/**
 * @file
 * Structured event tracing for the whole simulated stack.
 *
 * Every layer that does something an evaluation figure might need --
 * the PEBS model emitting or losing a record, the MMU taking a COW
 * fault, the runtime converting threads, the watchdog flushing a
 * stuck PTSB, the degradation ladder dropping a rung, a fault point
 * firing -- records a typed TraceEvent into a per-thread ring buffer.
 * Events carry the simulated-cycle timestamp plus two kind-specific
 * integer arguments (page numbers, thread ids, costs) and an optional
 * short detail string (fault-point name, degradation reason).
 *
 * Rings are fixed capacity: when one wraps, the oldest events are
 * overwritten and counted, so a runaway event source can never grow
 * memory -- the newest window of every thread's history survives.
 * drain() merges all rings into one time-ordered timeline for the
 * exporters (Chrome trace JSON, CSV time series, text report).
 *
 * Cost discipline: nothing in the simulator charges simulated cycles
 * for tracing, so a traced run is cycle-identical to an untraced one.
 * Host-side cost when tracing is off is a single null-pointer check
 * at each emit site (the Machine only allocates a recorder when
 * tracing is enabled). Compiling with TMI_TRACING=0 removes even the
 * record bodies; TraceRecorder::compiledIn lets tests and callers
 * check that path at compile time.
 */

#ifndef TMI_OBS_TRACE_HH
#define TMI_OBS_TRACE_HH

#include <cstring>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config_error.hh"
#include "common/types.hh"

#ifndef TMI_TRACING
#define TMI_TRACING 1
#endif

namespace tmi::obs
{

/**
 * Event taxonomy. Argument conventions (a0, a1) per kind:
 *  - HitmSample:     a0 = sampled vaddr, a1 = pc
 *  - PebsRecordDrop: a0 = sampled vaddr, a1 = 1 if ring overflow,
 *                    0 if the assist lost the record outright
 *  - T2pBegin:       a0 = attempt number (1-based)
 *  - T2pCommit:      a0 = threads converted, a1 = total T2P cycles
 *  - T2pRollback:    a0 = culprit tid, detail = why
 *  - CowFault:       a0 = vpage, a1 = pid
 *  - CowFallback:    a0 = vpage, a1 = pid (page degraded to shared)
 *  - PtsbCommit:     a0 = bytes changed, a1 = commit cost (cycles)
 *  - WatchdogFlush:  a0 = pid of the flushed PTSB
 *  - RepairEngage:   a0 = pages nominated this window
 *  - PageProtect:    a0 = vpage
 *  - Unrepair:       a0 = un-repair ordinal, detail = reason
 *  - LadderDrop:     a0 = from rung, a1 = to rung, detail = reason
 *  - LadderRecover:  a0 = from rung, a1 = to rung, detail = reason
 *  - FaultFire:      a0 = fire ordinal for that point,
 *                    detail = fault-point name
 *  - AnalysisWindow: a0 = records drained, a1 = pages nominated
 *  - AllocFallback:  a0 = requested bytes, detail = which fallback
 *  - ChaosSchedule:  a0 = campaign seed, a1 = events in the schedule
 *  - ChaosVerdict:   a0 = 1 pass / 0 fail, a1 = end-state digest,
 *                    detail = verdict reason
 */
enum class EventKind : std::uint8_t
{
    HitmSample,
    PebsRecordDrop,
    T2pBegin,
    T2pCommit,
    T2pRollback,
    CowFault,
    CowFallback,
    PtsbCommit,
    WatchdogFlush,
    RepairEngage,
    PageProtect,
    Unrepair,
    LadderDrop,
    LadderRecover,
    FaultFire,
    AnalysisWindow,
    AllocFallback,
    ChaosSchedule,
    ChaosVerdict,
};

inline constexpr unsigned numEventKinds = 19;

/** Dotted event name for exporters ("t2p.rollback", "ladder.drop"). */
const char *eventKindName(EventKind kind);

/** Every defined kind, in declaration order (schema enumeration). */
const std::vector<EventKind> &allEventKinds();

/** One recorded event. Self-contained value type: the detail string
 *  is copied (truncated) into the event so a drained timeline stays
 *  valid after the emitting component is destroyed. */
struct TraceEvent
{
    static constexpr std::size_t detailCapacity = 32;

    Cycles time = 0;
    ThreadId tid = 0;
    EventKind kind = EventKind::HitmSample;
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
    char detail[detailCapacity] = {};

    void
    setDetail(const char *s)
    {
        if (!s)
            return;
        std::strncpy(detail, s, detailCapacity - 1);
        detail[detailCapacity - 1] = '\0';
    }
};

/** Trace-recorder configuration. */
struct TraceConfig
{
    /** Master switch; when false the Machine allocates no recorder
     *  and every emit site reduces to a null-pointer check. */
    bool enabled = false;
    /** Events retained per thread ring; older events are overwritten
     *  (and counted) once a ring wraps. */
    std::size_t ringCapacity = 4096;

    bool operator==(const TraceConfig &) const = default;
};

/** Collect TraceConfig constraint violations under @p prefix. */
void validateConfig(const TraceConfig &config,
                    std::vector<ConfigError> &errors,
                    const std::string &prefix = "TraceConfig");

/** Per-thread ring-buffer trace recorder. */
class TraceRecorder
{
  public:
    /** False when the tree was built with -DTMI_TRACING=0: record()
     *  compiles to nothing and no ring is ever touched. */
    static constexpr bool compiledIn = TMI_TRACING != 0;

    explicit TraceRecorder(const TraceConfig &config = {});

    const TraceConfig &config() const { return _config; }

    /** Timestamp source for record(); typically the machine's
     *  scheduler clock. Unset, events are stamped 0. */
    void setClock(std::function<Cycles()> clock)
    {
        _clock = std::move(clock);
    }

    /** Current-thread source for recordHere(); typically the
     *  scheduler's running thread. Unset, events land on thread 0. */
    void setThreadSource(std::function<ThreadId()> source)
    {
        _tidSource = std::move(source);
    }

    /** Record one event, stamped with the current clock. */
    void
    record(EventKind kind, ThreadId tid, std::uint64_t a0 = 0,
           std::uint64_t a1 = 0, const char *detail = nullptr)
    {
        if constexpr (!compiledIn)
            return;
        recordAt(_clock ? _clock() : 0, kind, tid, a0, a1, detail);
    }

    /** Record one event with an explicit timestamp. */
    void recordAt(Cycles time, EventKind kind, ThreadId tid,
                  std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                  const char *detail = nullptr);

    /**
     * Record one event stamped with the current clock AND the
     * current thread -- for emitters (MMU, fault injector, runtime)
     * that do not track which thread is running.
     */
    void
    recordHere(EventKind kind, std::uint64_t a0 = 0,
               std::uint64_t a1 = 0, const char *detail = nullptr)
    {
        if constexpr (!compiledIn)
            return;
        recordAt(_clock ? _clock() : 0, kind,
                 _tidSource ? _tidSource() : 0, a0, a1, detail);
    }

    /** Lifetime record() calls accepted (including overwritten). */
    std::uint64_t recorded() const { return _recorded; }

    /** Events lost to ring wraparound (oldest-first overwrite). */
    std::uint64_t overwritten() const { return _overwritten; }

    /** Events of @p kind recorded so far. */
    std::uint64_t
    count(EventKind kind) const
    {
        return _kindCounts[static_cast<unsigned>(kind)];
    }

    /** Threads that have recorded at least one event. */
    std::size_t threadsTraced() const { return _rings.size(); }

    /** Events currently retained across all rings. */
    std::size_t retained() const;

    /**
     * Merge every ring into one time-ordered timeline and clear the
     * rings. Counters (recorded/overwritten/count) are preserved.
     */
    std::vector<TraceEvent> drain();

  private:
    struct Ring
    {
        std::vector<TraceEvent> slots; //!< grows up to ringCapacity
        std::size_t next = 0;          //!< overwrite cursor once full
        std::uint64_t total = 0;       //!< lifetime events from this thread
    };

    TraceConfig _config;
    std::function<Cycles()> _clock;
    std::function<ThreadId()> _tidSource;
    std::unordered_map<ThreadId, Ring> _rings;
    std::uint64_t _recorded = 0;
    std::uint64_t _overwritten = 0;
    std::uint64_t _kindCounts[numEventKinds] = {};
};

} // namespace tmi::obs

#endif // TMI_OBS_TRACE_HH
