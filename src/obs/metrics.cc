#include "metrics.hh"

#include <cmath>
#include <iomanip>

#include "common/logging.hh"

namespace tmi::obs
{

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

void
Histogram::sample(double v)
{
    if (_count == 0 || v < _min)
        _min = v;
    if (_count == 0 || v > _max)
        _max = v;
    _sum += v;
    ++_count;

    unsigned bucket = 0;
    if (v >= 1.0) {
        bucket = 1 + static_cast<unsigned>(std::ilogb(v));
        if (bucket >= numBuckets)
            bucket = numBuckets - 1;
    }
    ++_buckets[bucket];
}

MetricsRegistry::Entry *
MetricsRegistry::find(const std::string &name, MetricKind want)
{
    auto it = _entries.find(name);
    if (it == _entries.end())
        return nullptr;
    if (it->second.kind != want) {
        ++_collisions;
        warn("metrics: '%s' already registered as a %s; %s "
             "registration ignored",
             name.c_str(), metricKindName(it->second.kind),
             metricKindName(want));
    }
    return &it->second;
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const std::string &desc)
{
    if (Entry *e = find(name, MetricKind::Counter))
        return e->counter ? *e->counter : _scrapCounter;
    Counter &c = _counters.emplace_back();
    Entry e;
    e.kind = MetricKind::Counter;
    e.desc = desc;
    e.counter = &c;
    _entries.emplace(name, e);
    return c;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &desc)
{
    if (Entry *e = find(name, MetricKind::Gauge))
        return e->gauge ? *e->gauge : _scrapGauge;
    Gauge &g = _gauges.emplace_back();
    Entry e;
    e.kind = MetricKind::Gauge;
    e.desc = desc;
    e.gauge = &g;
    _entries.emplace(name, e);
    return g;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &desc)
{
    if (Entry *e = find(name, MetricKind::Histogram))
        return e->histogram ? *e->histogram : _scrapHistogram;
    Histogram &h = _histograms.emplace_back();
    Entry e;
    e.kind = MetricKind::Histogram;
    e.desc = desc;
    e.histogram = &h;
    _entries.emplace(name, e);
    return h;
}

bool
MetricsRegistry::contains(const std::string &name) const
{
    return _entries.count(name) != 0;
}

MetricKind
MetricsRegistry::kindOf(const std::string &name) const
{
    auto it = _entries.find(name);
    return it == _entries.end() ? MetricKind::Counter
                                : it->second.kind;
}

bool
MetricsRegistry::value(const std::string &name, double &out) const
{
    auto it = _entries.find(name);
    if (it == _entries.end())
        return false;
    const Entry &e = it->second;
    switch (e.kind) {
      case MetricKind::Counter:
        out = e.counter->value();
        return true;
      case MetricKind::Gauge:
        out = e.gauge->value();
        return true;
      case MetricKind::Histogram:
        out = e.histogram->mean();
        return true;
    }
    return false;
}

std::vector<std::string>
MetricsRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(_entries.size());
    for (const auto &[name, entry] : _entries) {
        (void)entry;
        out.push_back(name);
    }
    return out; // std::map iterates in lexicographic order
}

void
MetricsRegistry::importStats(const stats::StatGroup &group,
                             const std::string &prefix)
{
    std::string base = prefix.empty() ? "" : prefix + ".";
    group.visitScalars([&](const std::string &path, double value,
                           const std::string &desc) {
        counter(base + path, desc).add(value);
    });
    group.visitDistributions([&](const std::string &path,
                                 const stats::Distribution &dist,
                                 const std::string &desc) {
        gauge(base + path + ".mean", desc).set(dist.mean());
        gauge(base + path + ".max", desc).set(dist.max());
        gauge(base + path + ".count", desc)
            .set(static_cast<double>(dist.count()));
    });
}

void
MetricsRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, e] : _entries) {
        os << std::left << std::setw(10) << metricKindName(e.kind)
           << std::setw(44) << name;
        switch (e.kind) {
          case MetricKind::Counter:
            os << std::setw(16) << e.counter->value();
            break;
          case MetricKind::Gauge:
            os << std::setw(16) << e.gauge->value();
            break;
          case MetricKind::Histogram:
            os << "n=" << e.histogram->count()
               << " mean=" << e.histogram->mean()
               << " max=" << e.histogram->max();
            break;
        }
        if (!e.desc.empty())
            os << " # " << e.desc;
        os << "\n";
    }
}

} // namespace tmi::obs
