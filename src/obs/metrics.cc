#include "metrics.hh"

#include <cmath>
#include <iomanip>

#include "common/logging.hh"

namespace tmi::obs
{

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

void
Histogram::sample(double v)
{
    if (_count == 0 || v < _min)
        _min = v;
    if (_count == 0 || v > _max)
        _max = v;
    _sum += v;
    ++_count;

    unsigned bucket = 0;
    if (v >= 1.0) {
        bucket = 1 + static_cast<unsigned>(std::ilogb(v));
        if (bucket >= numBuckets)
            bucket = numBuckets - 1;
    }
    ++_buckets[bucket];
}

double
Histogram::quantile(double q) const
{
    if (_count == 0)
        return 0.0;
    if (q <= 0.0)
        return _min;
    if (q >= 1.0)
        return _max;

    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(_count)));
    if (rank < 1)
        rank = 1;
    if (rank > _count)
        rank = _count;

    std::uint64_t cum = 0;
    for (unsigned i = 0; i < numBuckets; ++i) {
        if (cum + _buckets[i] < rank) {
            cum += _buckets[i];
            continue;
        }
        // Rank falls in bucket i: interpolate inside [lo, hi).
        double lo = i == 0 ? 0.0 : std::ldexp(1.0, int(i) - 1);
        double hi = std::ldexp(1.0, int(i));
        double frac = static_cast<double>(rank - cum) /
                      static_cast<double>(_buckets[i]);
        double est = lo + frac * (hi - lo);
        // The bucket bounds are coarser than the tracked extremes.
        if (est < _min)
            est = _min;
        if (est > _max)
            est = _max;
        return est;
    }
    return _max;
}

void
Histogram::merge(const Histogram &other)
{
    if (other._count == 0)
        return;
    if (_count == 0 || other._min < _min)
        _min = other._min;
    if (_count == 0 || other._max > _max)
        _max = other._max;
    _count += other._count;
    _sum += other._sum;
    for (unsigned i = 0; i < numBuckets; ++i)
        _buckets[i] += other._buckets[i];
}

MetricsRegistry::Entry *
MetricsRegistry::find(const std::string &name, MetricKind want)
{
    auto it = _entries.find(name);
    if (it == _entries.end())
        return nullptr;
    if (it->second.kind != want) {
        ++_collisions;
        warn("metrics: '%s' already registered as a %s; %s "
             "registration ignored",
             name.c_str(), metricKindName(it->second.kind),
             metricKindName(want));
    }
    return &it->second;
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const std::string &desc)
{
    if (Entry *e = find(name, MetricKind::Counter))
        return e->counter ? *e->counter : _scrapCounter;
    Counter &c = _counters.emplace_back();
    Entry e;
    e.kind = MetricKind::Counter;
    e.desc = desc;
    e.counter = &c;
    _entries.emplace(name, e);
    return c;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &desc)
{
    if (Entry *e = find(name, MetricKind::Gauge))
        return e->gauge ? *e->gauge : _scrapGauge;
    Gauge &g = _gauges.emplace_back();
    Entry e;
    e.kind = MetricKind::Gauge;
    e.desc = desc;
    e.gauge = &g;
    _entries.emplace(name, e);
    return g;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &desc)
{
    if (Entry *e = find(name, MetricKind::Histogram))
        return e->histogram ? *e->histogram : _scrapHistogram;
    Histogram &h = _histograms.emplace_back();
    Entry e;
    e.kind = MetricKind::Histogram;
    e.desc = desc;
    e.histogram = &h;
    _entries.emplace(name, e);
    return h;
}

bool
MetricsRegistry::contains(const std::string &name) const
{
    return _entries.count(name) != 0;
}

MetricKind
MetricsRegistry::kindOf(const std::string &name) const
{
    auto it = _entries.find(name);
    return it == _entries.end() ? MetricKind::Counter
                                : it->second.kind;
}

bool
MetricsRegistry::value(const std::string &name, double &out) const
{
    auto it = _entries.find(name);
    if (it == _entries.end())
        return false;
    const Entry &e = it->second;
    switch (e.kind) {
      case MetricKind::Counter:
        out = e.counter->value();
        return true;
      case MetricKind::Gauge:
        out = e.gauge->value();
        return true;
      case MetricKind::Histogram:
        out = e.histogram->mean();
        return true;
    }
    return false;
}

std::vector<std::string>
MetricsRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(_entries.size());
    for (const auto &[name, entry] : _entries) {
        (void)entry;
        out.push_back(name);
    }
    return out; // std::map iterates in lexicographic order
}

const Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    auto it = _entries.find(name);
    if (it == _entries.end() || it->second.kind != MetricKind::Counter)
        return nullptr;
    return it->second.counter;
}

const Gauge *
MetricsRegistry::findGauge(const std::string &name) const
{
    auto it = _entries.find(name);
    if (it == _entries.end() || it->second.kind != MetricKind::Gauge)
        return nullptr;
    return it->second.gauge;
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    auto it = _entries.find(name);
    if (it == _entries.end() ||
        it->second.kind != MetricKind::Histogram) {
        return nullptr;
    }
    return it->second.histogram;
}

void
MetricsRegistry::importStats(const stats::StatGroup &group,
                             const std::string &prefix)
{
    std::string base = prefix.empty() ? "" : prefix + ".";
    group.visitScalars([&](const std::string &path, double value,
                           const std::string &desc) {
        counter(base + path, desc).add(value);
    });
    group.visitDistributions([&](const std::string &path,
                                 const stats::Distribution &dist,
                                 const std::string &desc) {
        gauge(base + path + ".mean", desc).set(dist.mean());
        gauge(base + path + ".max", desc).set(dist.max());
        gauge(base + path + ".count", desc)
            .set(static_cast<double>(dist.count()));
    });
}

void
MetricsRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, e] : _entries) {
        os << std::left << std::setw(10) << metricKindName(e.kind)
           << std::setw(44) << name;
        switch (e.kind) {
          case MetricKind::Counter:
            os << std::setw(16) << e.counter->value();
            break;
          case MetricKind::Gauge:
            os << std::setw(16) << e.gauge->value();
            break;
          case MetricKind::Histogram:
            os << "n=" << e.histogram->count()
               << " mean=" << e.histogram->mean()
               << " max=" << e.histogram->max()
               << " p50=" << e.histogram->p50()
               << " p99=" << e.histogram->p99()
               << " p999=" << e.histogram->p999();
            break;
        }
        if (!e.desc.empty())
            os << " # " << e.desc;
        os << "\n";
    }
}

} // namespace tmi::obs
