/**
 * @file
 * A unified metrics registry over the per-component statistics.
 *
 * The stats:: package gives each component cheap in-situ Scalars and
 * Distributions registered into a StatGroup tree. The MetricsRegistry
 * generalizes that into one flat, queryable namespace of *named*
 * counters, gauges, and histograms with hierarchical dotted names
 * ("machine.cache.hitmEvents", "runtime.t2p.aborts"). It is the
 * substrate every exporter and report consumes:
 *
 *  - native metrics can be registered directly (the observability
 *    layer's own counters and histograms live here);
 *  - any existing StatGroup tree can be imported wholesale through
 *    importStats(), which walks the tree with the stats visitors --
 *    so components keep their regStats() registration and gain
 *    export/query support with no per-class glue;
 *  - name collisions (same name registered under two kinds) are
 *    detected, warned about, and counted rather than silently
 *    aliased.
 */

#ifndef TMI_OBS_METRICS_HH
#define TMI_OBS_METRICS_HH

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace tmi::obs
{

/** What a registered name refers to. */
enum class MetricKind
{
    Counter,   //!< monotonically accumulating value
    Gauge,     //!< last-written value
    Histogram, //!< sampled value distribution with log2 buckets
};

/** Kind name for dumps ("counter", "gauge", "histogram"). */
const char *metricKindName(MetricKind kind);

/** Monotonic counter. */
class Counter
{
  public:
    Counter &operator++() { _value += 1.0; return *this; }
    void add(double v) { _value += v; }
    double value() const { return _value; }

  private:
    double _value = 0.0;
};

/** Last-value gauge. */
class Gauge
{
  public:
    void set(double v) { _value = v; }
    double value() const { return _value; }

  private:
    double _value = 0.0;
};

/** Log2-bucketed histogram: bucket i counts samples in [2^(i-1), 2^i)
 *  for i >= 1, bucket 0 counts samples < 1. */
class Histogram
{
  public:
    static constexpr unsigned numBuckets = 48;

    void sample(double v);

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    std::uint64_t bucket(unsigned i) const { return _buckets[i]; }

    /**
     * Estimated value at quantile @p q in [0, 1]: rank
     * ceil(q * count) is located in its log2 bucket and interpolated
     * linearly inside [2^(i-1), 2^i), then clamped to the exact
     * [min, max] the histogram tracked. Empty histograms report 0.
     */
    double quantile(double q) const;
    double p50() const { return quantile(0.50); }
    double p99() const { return quantile(0.99); }
    double p999() const { return quantile(0.999); }

    /** Fold @p other into this histogram, bucket- and moment-wise. */
    void merge(const Histogram &other);

  private:
    std::uint64_t _buckets[numBuckets] = {};
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/** The registry. Returned references stay valid for its lifetime. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Register (or re-fetch) a counter under @p name. Registering a
     * name that already exists with the same kind returns the same
     * object; with a different kind it is a collision -- warned,
     * counted, and served from a scrap metric so the caller's writes
     * cannot corrupt the legitimate registrant.
     */
    Counter &counter(const std::string &name,
                     const std::string &desc = "");

    /** Register (or re-fetch) a gauge; collision rules as counter(). */
    Gauge &gauge(const std::string &name, const std::string &desc = "");

    /** Register (or re-fetch) a histogram; collision rules as
     *  counter(). */
    Histogram &histogram(const std::string &name,
                         const std::string &desc = "");

    /** True if @p name is registered (any kind). */
    bool contains(const std::string &name) const;

    /** Kind of @p name; only meaningful when contains(name). */
    MetricKind kindOf(const std::string &name) const;

    /**
     * Current value of @p name: counter/gauge value, histogram mean.
     * @retval true when the metric exists.
     */
    bool value(const std::string &name, double &out) const;

    /** Registered names in lexicographic (= hierarchical) order. */
    std::vector<std::string> names() const;

    /** @name Typed read-only lookup (null when absent or another
     *  kind) -- what the CSV exporter walks. */
    ///@{
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;
    ///@}

    /** Metrics registered so far. */
    std::size_t size() const { return _entries.size(); }

    /** Kind-mismatch registrations observed. */
    std::uint64_t collisions() const { return _collisions; }

    /**
     * Import a StatGroup tree: every Scalar becomes a counter named
     * "<prefix>.<group path>.<stat>" (prefix omitted when empty) and
     * every Distribution becomes a histogram-flavoured gauge triple
     * (.mean/.max/.count). Values are snapshots taken now.
     */
    void importStats(const stats::StatGroup &group,
                     const std::string &prefix = "");

    /** Dump every metric as "kind name value  # desc", sorted. */
    void dump(std::ostream &os) const;

  private:
    struct Entry
    {
        MetricKind kind;
        std::string desc;
        Counter *counter = nullptr;
        Gauge *gauge = nullptr;
        Histogram *histogram = nullptr;
    };

    Entry *find(const std::string &name, MetricKind want);

    // Deques: stable addresses across growth.
    std::deque<Counter> _counters;
    std::deque<Gauge> _gauges;
    std::deque<Histogram> _histograms;
    std::map<std::string, Entry> _entries;
    std::uint64_t _collisions = 0;
    // Scrap metrics returned on kind collisions.
    Counter _scrapCounter;
    Gauge _scrapGauge;
    Histogram _scrapHistogram;
};

/** Dotted-prefix view: scope("runtime").counter("commits") registers
 *  "runtime.commits". Cheap to copy; holds a registry reference. */
class MetricScope
{
  public:
    MetricScope(MetricsRegistry &registry, std::string prefix)
        : _registry(registry), _prefix(std::move(prefix))
    {}

    Counter &
    counter(const std::string &name, const std::string &desc = "")
    {
        return _registry.counter(join(name), desc);
    }

    Gauge &
    gauge(const std::string &name, const std::string &desc = "")
    {
        return _registry.gauge(join(name), desc);
    }

    Histogram &
    histogram(const std::string &name, const std::string &desc = "")
    {
        return _registry.histogram(join(name), desc);
    }

    MetricScope scope(const std::string &sub) const
    {
        return {_registry, join(sub)};
    }

    const std::string &prefix() const { return _prefix; }

  private:
    std::string
    join(const std::string &name) const
    {
        return _prefix.empty() ? name : _prefix + "." + name;
    }

    MetricsRegistry &_registry;
    std::string _prefix;
};

} // namespace tmi::obs

#endif // TMI_OBS_METRICS_HH
