#include "trace.hh"

#include <algorithm>

namespace tmi::obs
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::HitmSample:
        return "hitm.sample";
      case EventKind::PebsRecordDrop:
        return "pebs.record_drop";
      case EventKind::T2pBegin:
        return "t2p.begin";
      case EventKind::T2pCommit:
        return "t2p.commit";
      case EventKind::T2pRollback:
        return "t2p.rollback";
      case EventKind::CowFault:
        return "cow.fault";
      case EventKind::CowFallback:
        return "cow.fallback";
      case EventKind::PtsbCommit:
        return "ptsb.commit";
      case EventKind::WatchdogFlush:
        return "watchdog.flush";
      case EventKind::RepairEngage:
        return "repair.engage";
      case EventKind::PageProtect:
        return "repair.page_protect";
      case EventKind::Unrepair:
        return "repair.unrepair";
      case EventKind::LadderDrop:
        return "ladder.drop";
      case EventKind::LadderRecover:
        return "ladder.recover";
      case EventKind::FaultFire:
        return "fault.fire";
      case EventKind::AnalysisWindow:
        return "detect.window";
      case EventKind::AllocFallback:
        return "alloc.fallback";
      case EventKind::ChaosSchedule:
        return "chaos.schedule";
      case EventKind::ChaosVerdict:
        return "chaos.verdict";
    }
    return "unknown";
}

const std::vector<EventKind> &
allEventKinds()
{
    static const std::vector<EventKind> kinds = [] {
        std::vector<EventKind> v;
        for (unsigned i = 0; i < numEventKinds; ++i)
            v.push_back(static_cast<EventKind>(i));
        return v;
    }();
    return kinds;
}

void
validateConfig(const TraceConfig &config,
               std::vector<ConfigError> &errors,
               const std::string &prefix)
{
    if (config.enabled && config.ringCapacity == 0) {
        errors.push_back(
            {prefix + ".ringCapacity",
             "must be positive when tracing is enabled: a zero-slot "
             "ring would drop every event it is meant to keep"});
    }
}

TraceRecorder::TraceRecorder(const TraceConfig &config)
    : _config(config)
{
    std::vector<ConfigError> errors;
    validateConfig(_config, errors);
    fatalIfConfigErrors(errors);
}

void
TraceRecorder::recordAt(Cycles time, EventKind kind, ThreadId tid,
                        std::uint64_t a0, std::uint64_t a1,
                        const char *detail)
{
    if constexpr (!compiledIn)
        return;
    TraceEvent ev;
    ev.time = time;
    ev.tid = tid;
    ev.kind = kind;
    ev.a0 = a0;
    ev.a1 = a1;
    ev.setDetail(detail);

    Ring &ring = _rings[tid];
    if (ring.slots.size() < _config.ringCapacity) {
        ring.slots.push_back(ev);
    } else {
        // Wraparound: overwrite the oldest slot and account the loss.
        ring.slots[ring.next] = ev;
        ring.next = (ring.next + 1) % _config.ringCapacity;
        ++_overwritten;
    }
    ++ring.total;
    ++_recorded;
    ++_kindCounts[static_cast<unsigned>(kind)];
}

std::size_t
TraceRecorder::retained() const
{
    std::size_t n = 0;
    for (const auto &[tid, ring] : _rings) {
        (void)tid;
        n += ring.slots.size();
    }
    return n;
}

std::vector<TraceEvent>
TraceRecorder::drain()
{
    std::vector<TraceEvent> out;
    out.reserve(retained());
    for (auto &[tid, ring] : _rings) {
        (void)tid;
        // Oldest first: a wrapped ring's oldest live event sits at
        // the overwrite cursor.
        for (std::size_t i = 0; i < ring.slots.size(); ++i) {
            std::size_t idx = (ring.next + i) % ring.slots.size();
            out.push_back(ring.slots[idx]);
        }
        ring.slots.clear();
        ring.next = 0;
    }
    _rings.clear();
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.time < b.time;
                     });
    return out;
}

} // namespace tmi::obs
