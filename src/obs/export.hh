/**
 * @file
 * Exporters over a drained trace timeline and a metrics registry.
 *
 * Three consumers, one substrate:
 *  - writeChromeTrace() emits Chrome trace_event JSON: load the file
 *    in chrome://tracing or https://ui.perfetto.dev to scrub through
 *    a detect -> repair -> fault -> ladder-drop run visually. Every
 *    event becomes an instant event on its thread's track with the
 *    kind-specific arguments attached.
 *  - writeCsvTimeSeries() buckets the timeline into fixed windows and
 *    emits one row per window with a count column per event kind --
 *    the robustness-figure input format.
 *  - writeTraceReport() prints the human summary: per-kind totals,
 *    the fault points that fired, and every ladder/repair transition
 *    with its reason and timestamp.
 *
 * All output is deterministic for a given timeline (goldens in
 * tests/obs/export_test.cc pin the formats).
 */

#ifndef TMI_OBS_EXPORT_HH
#define TMI_OBS_EXPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace tmi::obs
{

/** Run context the Chrome exporter embeds. */
struct ChromeTraceMeta
{
    /** Simulated-cycle to wall-clock conversion for the ts field. */
    double cyclesPerSecond = 3.4e9;
    /** Process name shown in the UI. */
    std::string processName = "tmi";
};

/**
 * Write the timeline as Chrome trace_event JSON ("traceEvents"
 * array format). Timestamps are microseconds of simulated time.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events,
                      const ChromeTraceMeta &meta = {});

/**
 * Write the timeline as a CSV time series: header
 * "window,start_ms,<kind>,..." with one count column per event kind
 * and one row per @p bucket-cycle window (empty windows included, so
 * rows are uniformly spaced for plotting).
 */
void writeCsvTimeSeries(std::ostream &os,
                        const std::vector<TraceEvent> &events,
                        double cyclesPerSecond, Cycles bucket);

/** Per-kind totals of a timeline. */
struct TraceSummary
{
    std::uint64_t counts[numEventKinds] = {};
    std::uint64_t total = 0;
    Cycles firstTime = 0;
    Cycles lastTime = 0;

    std::uint64_t
    count(EventKind kind) const
    {
        return counts[static_cast<unsigned>(kind)];
    }
};

/** Summarize a drained timeline. */
TraceSummary summarizeTrace(const std::vector<TraceEvent> &events);

/** Human-readable trace summary (the --report body). */
void writeTraceReport(std::ostream &os,
                      const std::vector<TraceEvent> &events,
                      double cyclesPerSecond);

/**
 * Write every registered metric as CSV, one row per name in
 * lexicographic order: "kind,name,value,count,mean,min,max,p50,p99,
 * p999". Counters and gauges fill `value` and leave the distribution
 * columns empty; histograms do the reverse (quantiles from
 * Histogram::quantile). Deterministic for a given registry -- the
 * export goldens byte-pin the format.
 */
void writeMetricsCsv(std::ostream &os, const MetricsRegistry &metrics);

} // namespace tmi::obs

#endif // TMI_OBS_EXPORT_HH
