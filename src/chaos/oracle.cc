#include "oracle.hh"

#include <cstdio>

#include "obs/trace.hh"

namespace tmi::chaos
{

const char *
verdictName(Verdict verdict)
{
    switch (verdict) {
      case Verdict::DigestMismatch:
        return "digest.mismatch";
      case Verdict::InvariantViolation:
        return "invariant.violation";
      case Verdict::Livelock:
        return "livelock";
      case Verdict::RunFailed:
        return "run.failed";
      case Verdict::NoDigest:
        return "no.digest";
      case Verdict::Pass:
        return "pass";
    }
    return "?";
}

Judgement
judge(const RunResult &golden, const RunResult &faulted)
{
    Judgement j;
    char buf[160];

    if (golden.outcome != RunOutcome::Completed ||
        golden.resultDigest == 0) {
        j.verdict = Verdict::NoDigest;
        j.reason = golden.outcome != RunOutcome::Completed
                       ? "golden run did not complete"
                       : "workload defines no result digest";
        return j;
    }

    // Liveness first: a run that never finished has no end state to
    // compare. A watchdog that fired and recovered still completes,
    // so it lands in the checks below, which is the intended "fired
    // but recovered is OK, livelock is not" line.
    if (faulted.outcome == RunOutcome::Timeout) {
        j.verdict = Verdict::Livelock;
        std::snprintf(buf, sizeof(buf),
                      "exceeded the cycle budget on rung %s",
                      faulted.ladderRung.empty()
                          ? "-"
                          : faulted.ladderRung.c_str());
        j.reason = buf;
        return j;
    }
    if (faulted.outcome != RunOutcome::Completed) {
        j.verdict = Verdict::RunFailed;
        j.reason = "faulted run deadlocked";
        return j;
    }

    if (faulted.invariantViolations != 0) {
        j.verdict = Verdict::InvariantViolation;
        std::snprintf(
            buf, sizeof(buf),
            "%llu ladder-transition invariant violation(s)",
            static_cast<unsigned long long>(
                faulted.invariantViolations));
        j.reason = buf;
        return j;
    }

    if (faulted.resultDigest != golden.resultDigest) {
        j.verdict = Verdict::DigestMismatch;
        std::snprintf(buf, sizeof(buf),
                      "end state %016llx != golden %016llx",
                      static_cast<unsigned long long>(
                          faulted.resultDigest),
                      static_cast<unsigned long long>(
                          golden.resultDigest));
        j.reason = buf;
        return j;
    }

    j.verdict = Verdict::Pass;
    j.reason = "-";
    return j;
}

void
annotateTrace(RunResult &result, const ChaosSchedule &schedule,
              const Judgement &judgement)
{
    if (result.traceEvents.empty() && result.traceRecorded == 0)
        return;

    obs::TraceEvent begin;
    begin.time = 0;
    begin.kind = obs::EventKind::ChaosSchedule;
    begin.a0 = schedule.campaignSeed;
    begin.a1 = schedule.events.size();
    begin.setDetail(schedule.workload.c_str());

    obs::TraceEvent end;
    end.time = result.cycles;
    end.kind = obs::EventKind::ChaosVerdict;
    end.a0 = judgement.pass() ? 1 : 0;
    end.a1 = result.resultDigest;
    end.setDetail(verdictName(judgement.verdict));

    // The timeline is time-sorted; the schedule event belongs at the
    // front, the verdict (stamped with the makespan) at the back.
    result.traceEvents.insert(result.traceEvents.begin(), begin);
    result.traceEvents.push_back(end);
    result.traceRecorded += 2;
}

} // namespace tmi::chaos
