#include "schedule.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fault/fault_injector.hh"

namespace tmi::chaos
{

Config
ChaosSchedule::toConfig(const Config &base) const
{
    Config config = base;
    config.run.workload = workload;
    config.run.treatment = treatment;
    config.run.threads = threads;
    config.run.scale = scale;
    config.run.seed = seed;
    config.run.budget = budget;
    config.run.faultSeed = faultSeed;
    config.run.sheriffBuggyDissolve = sheriffBuggyDissolve;
    if (watchdog != -1)
        config.run.watchdog = watchdog;
    if (monitor != -1)
        config.run.monitor = monitor;
    if (watchdogTimeout != 0)
        config.run.watchdogTimeout = watchdogTimeout;
    if (analysisInterval != 0)
        config.run.analysisInterval = analysisInterval;
    if (recoverUpWindows != 0)
        config.tmi.robust.recoverUpWindows = recoverUpWindows;
    config.run.faults.clear();
    for (const ChaosEvent &ev : events)
        config.run.faults.emplace_back(ev.point, ev.spec);
    return config;
}

std::string
ChaosSchedule::summary() const
{
    std::ostringstream os;
    os << workload << "/" << treatmentName(treatment) << " #" << index
       << ": " << events.size()
       << (events.size() == 1 ? " event" : " events");
    return os.str();
}

ScheduleGenerator::ScheduleGenerator(std::uint64_t campaignSeed,
                                     const GeneratorOptions &options)
    : _seed(campaignSeed), _opts(options)
{
    if (_opts.minEvents < 1 || _opts.maxEvents < _opts.minEvents) {
        fatal("ScheduleGenerator: event range [%u, %u] is invalid",
              _opts.minEvents, _opts.maxEvents);
    }
}

namespace
{

/** FNV-1a over the index, mixed into the campaign seed, so that
 *  schedule k depends on nothing but (seed, k). */
std::uint64_t
drawSeed(std::uint64_t campaign_seed, std::uint64_t index)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned byte = 0; byte < 8; ++byte) {
        h ^= (index >> (byte * 8)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return campaign_seed ^ h;
}

} // namespace

ChaosSchedule
ScheduleGenerator::generate(std::uint64_t index, Cycles horizon) const
{
    Rng rng(drawSeed(_seed, index));
    ChaosSchedule sched;
    sched.campaignSeed = _seed;
    sched.index = index;
    sched.faultSeed = rng.next();

    auto points = FaultInjector::allPoints();
    unsigned max_events = std::min<unsigned>(
        _opts.maxEvents, static_cast<unsigned>(points.size()));
    unsigned min_events = std::min(_opts.minEvents, max_events);
    unsigned n = static_cast<unsigned>(
        rng.range(min_events, max_events));

    // Draw n distinct points: partial Fisher-Yates over the registry
    // indices. One spec per point keeps arm() semantics simple and
    // makes every event independently removable by the minimizer.
    std::vector<unsigned> order(points.size());
    for (unsigned i = 0; i < order.size(); ++i)
        order[i] = i;
    for (unsigned i = 0; i < n; ++i) {
        unsigned j = static_cast<unsigned>(
            rng.range(i, order.size() - 1));
        std::swap(order[i], order[j]);
    }

    for (unsigned i = 0; i < n; ++i) {
        ChaosEvent ev;
        ev.point = points[order[i]].name;

        // Trigger mix: mostly random-rate faults, with every-Nth,
        // burst, and one-shot flavors to exercise clustered and
        // point-in-time failures too.
        std::uint64_t mode = rng.below(10);
        if (mode < 5) {
            // Log-uniform rate: chaos cares as much about rare
            // faults as about storms.
            double lo = std::log(_opts.minProbability);
            double hi = std::log(_opts.maxProbability);
            ev.spec.probability =
                std::exp(lo + (hi - lo) * rng.uniform());
        } else if (mode < 7) {
            ev.spec.everyNth = rng.range(8, 512);
        } else if (mode < 9) {
            ev.spec.burstPeriod = rng.range(16, 256);
            ev.spec.burstLen =
                rng.range(2, std::min<std::uint64_t>(
                                 8, ev.spec.burstPeriod));
        } else {
            ev.spec.fireAt = rng.range(1, 64);
            ev.spec.maxFires = 1;
        }

        // A capped point models a transient failure that clears up.
        if (ev.spec.maxFires == 0 && rng.chance(0.25))
            ev.spec.maxFires = rng.range(1, 8);

        if (horizon != 0 && rng.chance(_opts.windowFraction)) {
            // Window somewhere inside the fault-free makespan; start
            // can be 0 ("from the beginning") but end stays bounded
            // so the run gets a clean tail to recover in.
            std::uint64_t start = rng.below(horizon / 2 + 1);
            std::uint64_t len =
                rng.range(horizon / 8 + 1, horizon / 2 + 1);
            ev.spec.windowStart = start;
            ev.spec.windowEnd = start + len;
        }

        sched.events.push_back(std::move(ev));
    }
    return sched;
}

std::string
writeScheduleSpec(const ChaosSchedule &sched)
{
    std::ostringstream os;
    os << "# tmi-chaos schedule (replay: tmi-chaos replay <file>)\n";
    os << "workload = " << sched.workload << "\n";
    os << "treatment = " << treatmentName(sched.treatment) << "\n";
    os << "threads = " << sched.threads << "\n";
    os << "scale = " << sched.scale << "\n";
    os << "seed = " << sched.seed << "\n";
    os << "budget = " << sched.budget << "\n";
    os << "fault_seed = " << sched.faultSeed << "\n";
    if (sched.sheriffBuggyDissolve)
        os << "buggy_dissolve = 1\n";
    if (sched.watchdog != -1)
        os << "watchdog = " << sched.watchdog << "\n";
    if (sched.monitor != -1)
        os << "monitor = " << sched.monitor << "\n";
    if (sched.watchdogTimeout != 0)
        os << "watchdog_timeout = " << sched.watchdogTimeout << "\n";
    if (sched.analysisInterval != 0)
        os << "interval = " << sched.analysisInterval << "\n";
    if (sched.recoverUpWindows != 0)
        os << "recover_up = " << sched.recoverUpWindows << "\n";
    if (sched.campaignSeed != 0)
        os << "campaign_seed = " << sched.campaignSeed << "\n";
    if (sched.index != 0)
        os << "index = " << sched.index << "\n";
    for (const ChaosEvent &ev : sched.events) {
        os << "event = " << ev.point;
        const FaultSpec &s = ev.spec;
        char buf[160];
        if (s.probability != 0) {
            // %.17g round-trips any double exactly.
            std::snprintf(buf, sizeof(buf), " p=%.17g",
                          s.probability);
            os << buf;
        }
        if (s.fireAt != 0)
            os << " at=" << s.fireAt;
        if (s.everyNth != 0)
            os << " every=" << s.everyNth;
        if (s.maxFires != 0)
            os << " max=" << s.maxFires;
        if (s.burstPeriod != 0) {
            os << " burst=" << s.burstLen << "/" << s.burstPeriod;
        }
        if (s.windowStart != 0 || s.windowEnd != 0) {
            os << " window=" << s.windowStart << ":" << s.windowEnd;
        }
        os << "\n";
    }
    return os.str();
}

namespace
{

/** Strip leading/trailing whitespace. */
std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return end && *end == '\0';
}

/** Parse one "event = point k=v k=v ..." value. */
bool
parseEvent(const std::string &value, ChaosEvent &ev, std::string &err)
{
    std::istringstream is(value);
    std::string token;
    if (!(is >> token)) {
        err = "event needs a fault-point name";
        return false;
    }
    ev.point = token;
    while (is >> token) {
        auto eq = token.find('=');
        if (eq == std::string::npos) {
            err = "bad event attribute '" + token + "'";
            return false;
        }
        std::string key = token.substr(0, eq);
        std::string val = token.substr(eq + 1);
        std::uint64_t u = 0;
        if (key == "p") {
            char *end = nullptr;
            ev.spec.probability = std::strtod(val.c_str(), &end);
            if (!end || *end != '\0') {
                err = "bad probability '" + val + "'";
                return false;
            }
        } else if (key == "at" && parseU64(val, u)) {
            ev.spec.fireAt = u;
        } else if (key == "every" && parseU64(val, u)) {
            ev.spec.everyNth = u;
        } else if (key == "max" && parseU64(val, u)) {
            ev.spec.maxFires = u;
        } else if (key == "burst") {
            auto slash = val.find('/');
            std::uint64_t len = 0, period = 0;
            if (slash == std::string::npos ||
                !parseU64(val.substr(0, slash), len) ||
                !parseU64(val.substr(slash + 1), period)) {
                err = "bad burst '" + val + "' (want len/period)";
                return false;
            }
            ev.spec.burstLen = len;
            ev.spec.burstPeriod = period;
        } else if (key == "window") {
            auto colon = val.find(':');
            std::uint64_t start = 0, end = 0;
            if (colon == std::string::npos ||
                !parseU64(val.substr(0, colon), start) ||
                !parseU64(val.substr(colon + 1), end)) {
                err = "bad window '" + val + "' (want start:end)";
                return false;
            }
            ev.spec.windowStart = start;
            ev.spec.windowEnd = end;
        } else {
            err = "bad event attribute '" + token + "'";
            return false;
        }
    }
    return true;
}

} // namespace

bool
parseScheduleSpec(const std::string &text, ChaosSchedule &sched,
                  std::string &err)
{
    sched = ChaosSchedule{};
    std::istringstream is(text);
    std::string line;
    unsigned lineno = 0;
    bool saw_workload = false;
    while (std::getline(is, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        auto eq = line.find('=');
        if (eq == std::string::npos) {
            err = "line " + std::to_string(lineno) +
                  ": expected 'key = value'";
            return false;
        }
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        std::string detail;
        std::uint64_t u = 0;
        if (key == "workload") {
            sched.workload = value;
            saw_workload = true;
        } else if (key == "treatment") {
            const Treatment *t = tryParseTreatment(value);
            if (!t) {
                err = "line " + std::to_string(lineno) +
                      ": unknown treatment '" + value + "'";
                return false;
            }
            sched.treatment = *t;
        } else if (key == "threads" && parseU64(value, u)) {
            sched.threads = static_cast<unsigned>(u);
        } else if (key == "scale" && parseU64(value, u)) {
            sched.scale = u;
        } else if (key == "seed" && parseU64(value, u)) {
            sched.seed = u;
        } else if (key == "budget" && parseU64(value, u)) {
            sched.budget = u;
        } else if (key == "fault_seed" && parseU64(value, u)) {
            sched.faultSeed = u;
        } else if (key == "buggy_dissolve" && parseU64(value, u)) {
            sched.sheriffBuggyDissolve = u != 0;
        } else if (key == "watchdog" && parseU64(value, u)) {
            sched.watchdog = static_cast<int>(u);
        } else if (key == "monitor" && parseU64(value, u)) {
            sched.monitor = static_cast<int>(u);
        } else if (key == "watchdog_timeout" && parseU64(value, u)) {
            sched.watchdogTimeout = u;
        } else if (key == "interval" && parseU64(value, u)) {
            sched.analysisInterval = u;
        } else if (key == "recover_up" && parseU64(value, u)) {
            sched.recoverUpWindows = static_cast<unsigned>(u);
        } else if (key == "campaign_seed" && parseU64(value, u)) {
            sched.campaignSeed = u;
        } else if (key == "index" && parseU64(value, u)) {
            sched.index = u;
        } else if (key == "event") {
            ChaosEvent ev;
            if (!parseEvent(value, ev, detail)) {
                err = "line " + std::to_string(lineno) + ": " +
                      detail;
                return false;
            }
            sched.events.push_back(std::move(ev));
        } else {
            err = "line " + std::to_string(lineno) +
                  ": bad key or value in '" + line + "'";
            return false;
        }
    }
    if (!saw_workload) {
        err = "schedule spec never set 'workload'";
        return false;
    }
    return true;
}

} // namespace tmi::chaos
