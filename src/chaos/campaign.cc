#include "campaign.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace tmi::chaos
{

namespace
{

/** The fault-free config for one (workload, treatment) cell. */
Config
cellConfig(const CampaignSpec &spec, const std::string &workload,
           Treatment treatment)
{
    Config config = spec.base;
    config.run.workload = workload;
    config.run.treatment = treatment;
    config.run.faults.clear();
    config.run.sheriffBuggyDissolve = spec.sheriffBuggyDissolve;
    return config;
}

/** The run-cell fields of a schedule, from a cell config. */
void
fillCell(ChaosSchedule &sched, const Config &config)
{
    sched.workload = config.run.workload;
    sched.treatment = config.run.treatment;
    sched.threads = config.run.threads;
    sched.scale = config.run.scale;
    sched.seed = config.run.seed;
    sched.budget = config.run.budget;
    sched.sheriffBuggyDissolve = config.run.sheriffBuggyDissolve;
    // Capture the self-healing arming too: a reproducer spec must
    // replay the exact ladder the run failed under, not whatever the
    // replaying binary's base config happens to arm.
    sched.watchdog = config.run.watchdog;
    sched.monitor = config.run.monitor;
    sched.watchdogTimeout = config.run.watchdogTimeout;
    sched.analysisInterval = config.run.analysisInterval;
    sched.recoverUpWindows = config.tmi.robust.recoverUpWindows;
}

/** CSV cells must not sprout new columns or rows. */
std::string
sanitize(std::string s)
{
    for (char &c : s) {
        if (c == ',' || c == '\n' || c == '\r')
            c = ';';
    }
    return s;
}

const char *
outcomeStr(RunOutcome outcome)
{
    switch (outcome) {
      case RunOutcome::Completed:
        return "completed";
      case RunOutcome::Timeout:
        return "timeout";
      case RunOutcome::Deadlock:
        return "deadlock";
    }
    return "?";
}

/** Judge a delivered job against its golden (host failures too). */
Judgement
judgeJob(const driver::JobResult &jr, const RunResult &golden)
{
    switch (jr.status) {
      case driver::JobStatus::Ok:
        return judge(golden, jr.run);
      case driver::JobStatus::TimedOut:
        return {Verdict::Livelock, "killed by the host-side timeout"};
      case driver::JobStatus::Failed:
        return {Verdict::RunFailed,
                jr.error.empty() ? "job failed" : jr.error};
      case driver::JobStatus::Poisoned:
        return {Verdict::RunFailed,
                jr.error.empty() ? "quarantined as a poison job"
                                 : jr.error};
      case driver::JobStatus::Cancelled:
        break;
    }
    return {Verdict::NoDigest, "cancelled before running"};
}

} // namespace

std::vector<ConfigError>
CampaignSpec::validate() const
{
    std::vector<ConfigError> errors;
    if (workloads.empty()) {
        errors.push_back({"CampaignSpec.workloads",
                          "a campaign needs at least one workload"});
    }
    if (treatments.empty()) {
        errors.push_back({"CampaignSpec.treatments",
                          "a campaign needs at least one treatment"});
    }
    if (schedules == 0) {
        errors.push_back({"CampaignSpec.schedules",
                          "a campaign of zero schedules per cell "
                          "judges nothing"});
    }
    if (generator.minEvents < 1 ||
        generator.maxEvents < generator.minEvents) {
        errors.push_back({"CampaignSpec.generator",
                          "event range [min, max] is invalid"});
    }
    // Every cell must be a runnable config (bad workload names and
    // template inconsistencies surface here, not mid-campaign).
    for (const std::string &wl : workloads) {
        for (Treatment t : treatments) {
            for (ConfigError &e :
                 cellConfig(*this, wl, t).validate()) {
                e.field = wl + "/" + treatmentName(t) + ": " + e.field;
                errors.push_back(std::move(e));
            }
        }
    }
    return errors;
}

std::uint64_t
CampaignSpec::totalRuns() const
{
    std::uint64_t cells = static_cast<std::uint64_t>(
                              workloads.size()) *
                          treatments.size();
    return cells * (1 + schedules);
}

const char *
chaosCsvHeader()
{
    return "row_id,kind,workload,treatment,threads,scale,seed,"
           "campaign_seed,schedule_index,fault_seed,events,status,"
           "outcome,verdict,reason,rung,cycles,slowdown,fault_fires,"
           "t2p_aborts,unrepairs,watchdog_flushes,ladder_drops,"
           "ladder_recovers,invariant_violations,digest,"
           "golden_digest";
}

std::string
chaosCsvRow(const CampaignRow &row)
{
    bool ok = row.status == driver::JobStatus::Ok;
    const RunResult &r = row.run;
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "%llu,%s,%s,%s,%u,%llu,%llu,%llu,%llu,%llu,%zu,%s,%s,%s,%s,"
        "%s,%llu,%.4f,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%016llx,%016llx",
        static_cast<unsigned long long>(row.id),
        row.golden ? "golden" : "chaos",
        row.schedule.workload.c_str(),
        treatmentName(row.schedule.treatment), row.schedule.threads,
        static_cast<unsigned long long>(row.schedule.scale),
        static_cast<unsigned long long>(row.schedule.seed),
        static_cast<unsigned long long>(row.schedule.campaignSeed),
        static_cast<unsigned long long>(row.schedule.index),
        static_cast<unsigned long long>(row.schedule.faultSeed),
        row.schedule.events.size(),
        driver::jobStatusName(row.status),
        ok ? outcomeStr(r.outcome) : "-",
        row.golden ? "golden" : verdictName(row.judgement.verdict),
        row.judgement.reason.empty()
            ? "-"
            : sanitize(row.judgement.reason).c_str(),
        ok && !r.ladderRung.empty() ? r.ladderRung.c_str() : "-",
        static_cast<unsigned long long>(ok ? r.cycles : 0),
        row.slowdown,
        static_cast<unsigned long long>(ok ? r.faultFires : 0),
        static_cast<unsigned long long>(ok ? r.t2pAborts : 0),
        static_cast<unsigned long long>(ok ? r.unrepairs : 0),
        static_cast<unsigned long long>(ok ? r.watchdogFlushes : 0),
        static_cast<unsigned long long>(ok ? r.ladderDrops : 0),
        static_cast<unsigned long long>(ok ? r.ladderRecovers : 0),
        static_cast<unsigned long long>(ok ? r.invariantViolations
                                           : 0),
        static_cast<unsigned long long>(ok ? r.resultDigest : 0),
        static_cast<unsigned long long>(row.goldenDigest));
    return buf;
}

CampaignOutcome
runCampaign(const CampaignSpec &spec, driver::Runner &runner,
            std::ostream *csv)
{
    CampaignOutcome out;
    if (csv)
        *csv << chaosCsvHeader() << "\n";

    struct Cell
    {
        Config config;
        RunResult golden;
        bool goldenOk = false;
    };
    std::vector<Cell> cells;
    for (const std::string &wl : spec.workloads) {
        for (Treatment t : spec.treatments)
            cells.push_back({cellConfig(spec, wl, t), {}, false});
    }

    // Phase 1: golden fault-free runs, one job per cell. Delivered
    // in job-id (== cell) order, so the golden rows stream first and
    // in a stable order for any worker count.
    std::vector<driver::Job> golden_jobs;
    for (const Cell &cell : cells)
        golden_jobs.push_back({0, cell.config, "", 0.0});

    std::uint64_t next_id = 0;
    driver::FunctionSink golden_sink([&](const driver::JobResult &jr) {
        Cell &cell = cells[jr.job.id];
        CampaignRow row;
        row.id = next_id++;
        row.golden = true;
        fillCell(row.schedule, cell.config);
        row.schedule.campaignSeed = spec.campaignSeed;
        row.status = jr.status;
        row.run = jr.run;
        if (jr.status == driver::JobStatus::Ok) {
            cell.golden = jr.run;
            cell.goldenOk = jr.run.outcome == RunOutcome::Completed;
            row.goldenDigest = jr.run.resultDigest;
            row.slowdown = 1.0;
            row.judgement = {Verdict::Pass, "golden baseline"};
        } else {
            row.judgement = judgeJob(jr, {});
            ++out.jobFailures;
        }
        if (csv)
            *csv << chaosCsvRow(row) << "\n";
        out.rows.push_back(std::move(row));
    });
    runner.run(std::move(golden_jobs), &golden_sink);

    // Phase 2: the chaos matrix. Schedule (cell c, draw k) is drawn
    // from the campaign seed at global index c * schedules + k with
    // the cell's fault-free makespan as the window horizon -- all
    // pure functions of the spec, so the job list (and the CSV) is
    // reproducible no matter how the runner interleaves execution.
    ScheduleGenerator gen(spec.campaignSeed, spec.generator);
    std::vector<driver::Job> chaos_jobs;
    std::vector<ChaosSchedule> schedules;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        Cycles horizon =
            cells[c].goldenOk ? cells[c].golden.cycles : 0;
        for (std::uint64_t k = 0; k < spec.schedules; ++k) {
            ChaosSchedule sched =
                gen.generate(c * spec.schedules + k, horizon);
            fillCell(sched, cells[c].config);
            // fillCell resets provenance inputs to the cell's; keep
            // the draw identity.
            sched.campaignSeed = spec.campaignSeed;
            chaos_jobs.push_back(
                {0, sched.toConfig(spec.base), "chaos", 0.0});
            schedules.push_back(std::move(sched));
        }
    }

    driver::FunctionSink chaos_sink([&](const driver::JobResult &jr) {
        const Cell &cell = cells[jr.job.id / spec.schedules];
        CampaignRow row;
        row.id = next_id++;
        row.schedule = schedules[jr.job.id];
        row.status = jr.status;
        row.run = jr.run;
        row.goldenDigest =
            cell.goldenOk ? cell.golden.resultDigest : 0;
        row.judgement = judgeJob(jr, cell.golden);
        if (jr.status == driver::JobStatus::Ok && cell.goldenOk &&
            cell.golden.cycles != 0) {
            row.slowdown = static_cast<double>(jr.run.cycles) /
                           static_cast<double>(cell.golden.cycles);
        }
        if (jr.status != driver::JobStatus::Ok)
            ++out.jobFailures;
        ++out.judged;
        if (row.judgement.pass())
            ++out.passed;
        else if (row.judgement.fail())
            ++out.failed;
        else
            ++out.skipped;
        if (csv)
            *csv << chaosCsvRow(row) << "\n";
        out.rows.push_back(std::move(row));
    });
    runner.run(std::move(chaos_jobs), &chaos_sink);

    // Phase 3: shrink the first few failures to 1-minimal
    // reproducers. Probes replay synchronously (deterministically)
    // in this thread; the CSV is already complete.
    if (!spec.minimizeFailures)
        return out;
    unsigned minimized = 0;
    for (const CampaignRow &row : out.rows) {
        if (minimized >= spec.minimizeLimit)
            break;
        if (row.golden || !row.judgement.fail() ||
            row.status != driver::JobStatus::Ok) {
            continue;
        }
        std::size_t cell_index = 0;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (cells[c].config.run.workload ==
                    row.schedule.workload &&
                cells[c].config.run.treatment ==
                    row.schedule.treatment) {
                cell_index = c;
                break;
            }
        }
        const Cell &cell = cells[cell_index];
        auto still_fails = [&](const ChaosSchedule &s) {
            RunResult probe = runExperiment(s.toConfig(spec.base));
            return judge(cell.golden, probe).fail();
        };
        CampaignOutcome::Reproducer repro;
        repro.minimized =
            minimizeSchedule(row.schedule, still_fails, &repro.stats);
        RunResult replay =
            runExperiment(repro.minimized.toConfig(spec.base));
        repro.judgement = judge(cell.golden, replay);
        out.reproducers.push_back(std::move(repro));
        ++minimized;
    }
    return out;
}

namespace
{

/** Sum the supervisor stats of one phase into the campaign total. */
void
accumulateStats(driver::ShardRunStats &total,
                const driver::ShardRunStats &phase)
{
    total.shards = std::max(total.shards, phase.shards);
    total.crashes += phase.crashes;
    total.respawns += phase.respawns;
    total.poisoned += phase.poisoned;
    total.resumedJobs += phase.resumedJobs;
    total.tornRecords += phase.tornRecords;
    total.sweep.total += phase.sweep.total;
    total.sweep.ok += phase.sweep.ok;
    total.sweep.failed += phase.sweep.failed;
    total.sweep.timedOut += phase.sweep.timedOut;
    total.sweep.cancelled += phase.sweep.cancelled;
    total.sweep.poisoned += phase.sweep.poisoned;
    total.sweep.retries += phase.sweep.retries;
    total.sweep.wallSeconds += phase.sweep.wallSeconds;
}

} // namespace

CampaignOutcome
runCampaignSharded(const CampaignSpec &spec,
                   const ShardedCampaignOptions &opts,
                   std::ostream *csv,
                   driver::ShardRunStats *orchestration)
{
    CampaignOutcome out;
    driver::ShardRunStats total;
    if (csv)
        *csv << chaosCsvHeader() << "\n";

    struct Cell
    {
        Config config;
        RunResult golden;
        bool goldenOk = false;
    };
    std::vector<Cell> cells;
    for (const std::string &wl : spec.workloads) {
        for (Treatment t : spec.treatments)
            cells.push_back({cellConfig(spec, wl, t), {}, false});
    }

    // Each phase runs under its own supervisor and journals into its
    // own subdirectory: the two job lists have different shapes, so
    // they must not share a MANIFEST.
    auto phaseOptions = [&](const char *phase) {
        driver::ShardOptions so = opts.shard;
        so.journalDir = opts.shard.journalDir + "/" + phase;
        return so;
    };

    // Phase 1: goldens, one process-isolated job per cell. The
    // merged journal stream arrives in cell order, so the golden
    // rows are identical to an in-process runCampaign's.
    std::vector<driver::Job> golden_jobs;
    for (const Cell &cell : cells)
        golden_jobs.push_back({0, cell.config, "", 0.0});

    std::uint64_t next_id = 0;
    driver::FunctionSink golden_sink([&](const driver::JobResult &jr) {
        Cell &cell = cells[jr.job.id];
        CampaignRow row;
        row.id = next_id++;
        row.golden = true;
        fillCell(row.schedule, cell.config);
        row.schedule.campaignSeed = spec.campaignSeed;
        row.status = jr.status;
        row.run = jr.run;
        if (jr.status == driver::JobStatus::Ok) {
            cell.golden = jr.run;
            cell.goldenOk = jr.run.outcome == RunOutcome::Completed;
            row.goldenDigest = jr.run.resultDigest;
            row.slowdown = 1.0;
            row.judgement = {Verdict::Pass, "golden baseline"};
        } else {
            row.judgement = judgeJob(jr, {});
            ++out.jobFailures;
        }
        if (csv)
            *csv << chaosCsvRow(row) << "\n";
        if (opts.collectRows)
            out.rows.push_back(std::move(row));
    });
    {
        driver::ShardSupervisor sup(phaseOptions("goldens"));
        accumulateStats(
            total, sup.run(std::move(golden_jobs), &golden_sink));
    }

    // Phase 2: the chaos matrix under process isolation. Schedule
    // draw k of cell c is a pure function of (campaign seed,
    // c * schedules + k, the cell's golden makespan), so the sink
    // re-draws each delivered job's schedule on demand instead of
    // buffering all of them -- with collectRows off the campaign
    // holds one row at a time no matter how many schedules run.
    ScheduleGenerator gen(spec.campaignSeed, spec.generator);
    auto drawSchedule = [&](std::uint64_t globalIndex) {
        const Cell &cell = cells[globalIndex / spec.schedules];
        ChaosSchedule sched = gen.generate(
            globalIndex, cell.goldenOk ? cell.golden.cycles : 0);
        fillCell(sched, cell.config);
        sched.campaignSeed = spec.campaignSeed;
        return sched;
    };

    std::vector<driver::Job> chaos_jobs;
    for (std::uint64_t i = 0; i < cells.size() * spec.schedules; ++i) {
        chaos_jobs.push_back(
            {0, drawSchedule(i).toConfig(spec.base), "chaos", 0.0});
    }

    // Failures queued for phase 3 (bounded by minimizeLimit).
    struct PendingFailure
    {
        ChaosSchedule schedule;
        std::size_t cell;
    };
    std::vector<PendingFailure> to_minimize;

    driver::FunctionSink chaos_sink([&](const driver::JobResult &jr) {
        std::size_t c = jr.job.id / spec.schedules;
        const Cell &cell = cells[c];
        CampaignRow row;
        row.id = next_id++;
        row.schedule = drawSchedule(jr.job.id);
        row.status = jr.status;
        row.run = jr.run;
        row.goldenDigest =
            cell.goldenOk ? cell.golden.resultDigest : 0;
        row.judgement = judgeJob(jr, cell.golden);
        if (jr.status == driver::JobStatus::Ok && cell.goldenOk &&
            cell.golden.cycles != 0) {
            row.slowdown = static_cast<double>(jr.run.cycles) /
                           static_cast<double>(cell.golden.cycles);
        }
        if (jr.status != driver::JobStatus::Ok)
            ++out.jobFailures;
        ++out.judged;
        if (row.judgement.pass())
            ++out.passed;
        else if (row.judgement.fail())
            ++out.failed;
        else
            ++out.skipped;
        if (spec.minimizeFailures &&
            to_minimize.size() < spec.minimizeLimit &&
            row.judgement.fail() &&
            jr.status == driver::JobStatus::Ok) {
            to_minimize.push_back({row.schedule, c});
        }
        if (csv)
            *csv << chaosCsvRow(row) << "\n";
        if (opts.collectRows)
            out.rows.push_back(std::move(row));
    });
    {
        driver::ShardSupervisor sup(phaseOptions("chaos"));
        accumulateStats(
            total, sup.run(std::move(chaos_jobs), &chaos_sink));
    }

    if (orchestration)
        *orchestration = total;

    // Phase 3: shrink, exactly as runCampaign does -- probes replay
    // in-process (each probe is the deterministic simulation the
    // journals already proved out).
    for (const PendingFailure &pf : to_minimize) {
        const Cell &cell = cells[pf.cell];
        auto still_fails = [&](const ChaosSchedule &s) {
            RunResult probe = runExperiment(s.toConfig(spec.base));
            return judge(cell.golden, probe).fail();
        };
        CampaignOutcome::Reproducer repro;
        repro.minimized =
            minimizeSchedule(pf.schedule, still_fails, &repro.stats);
        RunResult replay =
            runExperiment(repro.minimized.toConfig(spec.base));
        repro.judgement = judge(cell.golden, replay);
        out.reproducers.push_back(std::move(repro));
    }
    return out;
}

CampaignRow
replaySchedule(const ChaosSchedule &schedule, const Config &base)
{
    Config faulted_cfg = schedule.toConfig(base);
    Config golden_cfg = faulted_cfg;
    golden_cfg.run.faults.clear();

    CampaignRow row;
    row.schedule = schedule;
    row.status = driver::JobStatus::Ok;

    RunResult golden = runExperiment(golden_cfg);
    row.goldenDigest = golden.resultDigest;
    row.run = runExperiment(faulted_cfg);
    row.judgement = judge(golden, row.run);
    if (golden.outcome == RunOutcome::Completed &&
        golden.cycles != 0) {
        row.slowdown = static_cast<double>(row.run.cycles) /
                       static_cast<double>(golden.cycles);
    }
    annotateTrace(row.run, schedule, row.judgement);
    return row;
}

} // namespace tmi::chaos
