/**
 * @file
 * The differential end-state oracle.
 *
 * The chaos campaign's correctness claim is differential: whatever a
 * workload computes fault-free under a treatment, it must compute
 * the same thing under any injected fault schedule -- the runtime may
 * retry, degrade down its ladder, un-repair, or flush watchdogs, but
 * it must never trade results for survival. The oracle encodes that
 * as three checks against the fault-free golden run:
 *
 *  1. liveness: the faulted run completes within the same simulated
 *     budget. A watchdog that fired and recovered is fine; a run
 *     that timed out (livelock) or deadlocked is a failure.
 *  2. invariants: the runtime's ladder-transition probes
 *     (runtime/invariants.hh) reported no violations -- dissolving
 *     with uncommitted twins or orphaning a private mapping fails
 *     the run even when the digest happens to survive.
 *  3. end state: the workload's resultDigest() equals the golden's.
 *
 * Verdicts are ordered most- to least-severe; judge() reports the
 * first failing check so a CSV row always names the strongest signal.
 */

#ifndef TMI_CHAOS_ORACLE_HH
#define TMI_CHAOS_ORACLE_HH

#include "chaos/schedule.hh"
#include "core/experiment.hh"

namespace tmi::chaos
{

/** Oracle outcome for one faulted run (severity order). */
enum class Verdict
{
    DigestMismatch,     //!< end state diverged from the golden
    InvariantViolation, //!< a ladder-transition probe tripped
    Livelock,           //!< faulted run exceeded the golden's budget
    RunFailed,          //!< host-level failure (no RunResult)
    NoDigest,           //!< golden defines no digest: not judged
    Pass,               //!< converged to the golden end state
};

/** Lower-case dotted verdict name ("digest.mismatch", "pass"). */
const char *verdictName(Verdict verdict);

/** judge()'s full answer: the verdict plus a one-line reason. */
struct Judgement
{
    Verdict verdict = Verdict::Pass;
    std::string reason; //!< human-readable; "-" when passing

    bool pass() const { return verdict == Verdict::Pass; }
    /** NoDigest is neither pass nor fail: the cell is unjudgeable. */
    bool fail() const
    {
        return verdict != Verdict::Pass && verdict != Verdict::NoDigest;
    }
};

/**
 * Judge @p faulted against its fault-free @p golden. The golden must
 * come from the identical cell (same workload, treatment, threads,
 * scale, seed) with no faults armed; the caller owns that pairing.
 */
Judgement judge(const RunResult &golden, const RunResult &faulted);

/**
 * Append the chaos trace events to a traced result's timeline: one
 * ChaosSchedule event at time 0 describing the scenario and one
 * ChaosVerdict event at the run's end carrying the judgement. No-op
 * when the run captured no trace.
 */
void annotateTrace(RunResult &result, const ChaosSchedule &schedule,
                   const Judgement &judgement);

} // namespace tmi::chaos

#endif // TMI_CHAOS_ORACLE_HH
