/**
 * @file
 * Chaos schedules: randomized-but-replayable fault scenarios.
 *
 * A ChaosSchedule is one complete fault scenario for one run cell:
 * which fault points are armed, with what triggers (probability,
 * every-Nth, bursts, one-shots), over which simulated-cycle windows,
 * plus the run scalars (workload, treatment, seeds) needed to replay
 * it bit-for-bit. The ScheduleGenerator draws schedules from the full
 * fault-point registry (FaultInjector::allPoints()) such that
 * schedule k of a campaign is a pure function of (campaign seed, k):
 * re-running a campaign -- or replaying one schedule out of it --
 * reproduces the exact same injections.
 *
 * Schedules round-trip through a small `key = value` spec text
 * (writeScheduleSpec / parseScheduleSpec) so a failing schedule,
 * once minimized, can be checked in as a replayable reproducer and
 * re-run by `tmi-chaos replay` long after the campaign that found it.
 */

#ifndef TMI_CHAOS_SCHEDULE_HH
#define TMI_CHAOS_SCHEDULE_HH

#include <string>
#include <vector>

#include "core/config.hh"

namespace tmi::chaos
{

/** One armed fault point of a schedule. */
struct ChaosEvent
{
    std::string point; //!< registry name ("mem.clone_fail", ...)
    FaultSpec spec;

    bool operator==(const ChaosEvent &) const = default;
};

/** A complete replayable fault scenario for one run cell. */
struct ChaosSchedule
{
    /** @name Run cell (what the faults are injected into) */
    /// @{
    std::string workload;
    Treatment treatment = Treatment::TmiProtect;
    unsigned threads = 4;
    std::uint64_t scale = 1;
    std::uint64_t seed = 42;      //!< workload/run seed
    Cycles budget = 400'000'000'000ULL;
    /** TEST-ONLY regression hook: replay against the Sheriff
     *  dissolve-ordering bug (ExperimentConfig::sheriffBuggyDissolve). */
    bool sheriffBuggyDissolve = false;
    /** Self-healing arming, captured so a reproducer spec replays
     *  the exact ladder it failed under (-1/0/1 convention and 0 =
     *  keep, matching ExperimentConfig). */
    int watchdog = -1;
    int monitor = -1;
    Cycles watchdogTimeout = 0;
    /** Analysis/supervision cadence (0 = keep the base default). */
    Cycles analysisInterval = 0;
    /** Clean windows before the ladder climbs back up (0 = keep). */
    unsigned recoverUpWindows = 0;
    /// @}

    /** @name Fault scenario */
    /// @{
    std::uint64_t faultSeed = 0xfa17u; //!< per-point stream seed
    std::vector<ChaosEvent> events;    //!< one armed point each
    /// @}

    /** Provenance echo: the campaign seed and draw index this
     *  schedule came from (0/0 for hand-written specs). */
    std::uint64_t campaignSeed = 0;
    std::uint64_t index = 0;

    bool operator==(const ChaosSchedule &) const = default;

    /** Overlay this schedule onto @p base: run cell scalars, the
     *  fault list, and the regression hook. Deep machine/runtime
     *  templates in @p base are kept. */
    Config toConfig(const Config &base) const;

    /** "histogramfs/tmi-protect #12: 3 events" (logs, CSV labels). */
    std::string summary() const;
};

/** Knobs for schedule drawing (defaults suit the FS workloads). */
struct GeneratorOptions
{
    /** Events per schedule, drawn uniformly in [min, max], capped at
     *  the registry size (points are drawn without replacement). */
    unsigned minEvents = 1;
    unsigned maxEvents = 4;
    /** Chance an event is restricted to a firing window (needs a
     *  nonzero horizon at generate() time). */
    double windowFraction = 0.5;
    /** Random-trigger probability range (log-uniform draw). */
    double minProbability = 0.005;
    double maxProbability = 0.5;
};

/**
 * Draws ChaosSchedules deterministically from a campaign seed.
 *
 * generate(k, horizon) uses a throwaway RNG seeded from
 * (campaignSeed, k) only, so schedules can be drawn in any order, in
 * parallel, or individually re-drawn for replay -- the result is
 * always byte-identical. @p horizon (typically the cell's fault-free
 * makespan in cycles) bounds firing windows; 0 disables windows.
 */
class ScheduleGenerator
{
  public:
    explicit ScheduleGenerator(std::uint64_t campaignSeed,
                               const GeneratorOptions &options = {});

    /** Draw schedule @p index (run-cell fields left at defaults;
     *  the caller overlays its cell). */
    ChaosSchedule generate(std::uint64_t index,
                           Cycles horizon = 0) const;

    std::uint64_t campaignSeed() const { return _seed; }
    const GeneratorOptions &options() const { return _opts; }

  private:
    std::uint64_t _seed;
    GeneratorOptions _opts;
};

/** @name Schedule spec text (replayable reproducer files)
 *  One `key = value` per line, #-comments; `event =` lines carry the
 *  armed points. parse(write(s)) == s for any schedule. */
/// @{
/** Serialize @p schedule as spec text (ends with a newline). */
std::string writeScheduleSpec(const ChaosSchedule &schedule);

/** Parse spec text; false + @p err (with line number) on the first
 *  bad line. @p schedule is default-initialized first. */
bool parseScheduleSpec(const std::string &text,
                       ChaosSchedule &schedule, std::string &err);
/// @}

} // namespace tmi::chaos

#endif // TMI_CHAOS_SCHEDULE_HH
