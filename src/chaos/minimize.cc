#include "minimize.hh"

#include <algorithm>

namespace tmi::chaos
{

namespace
{

/** @p sched with only the events whose indices are in @p keep. */
ChaosSchedule
withEvents(const ChaosSchedule &sched,
           const std::vector<std::size_t> &keep)
{
    ChaosSchedule out = sched;
    out.events.clear();
    for (std::size_t i : keep)
        out.events.push_back(sched.events[i]);
    return out;
}

} // namespace

ChaosSchedule
minimizeSchedule(const ChaosSchedule &failing,
                 const std::function<bool(const ChaosSchedule &)>
                     &stillFails,
                 MinimizeStats *stats)
{
    MinimizeStats local;
    MinimizeStats &st = stats ? *stats : local;
    st.probes = 0;
    st.originalEvents = failing.events.size();

    // Working set: indices into failing.events still believed
    // necessary. ddmin with granularity n: try each of the n chunks
    // alone, then each complement; on a hit, restart with the
    // smaller set, else refine granularity until chunks are single
    // events.
    std::vector<std::size_t> live(failing.events.size());
    for (std::size_t i = 0; i < live.size(); ++i)
        live[i] = i;

    std::size_t granularity = 2;
    while (live.size() >= 2) {
        std::size_t n = std::min(granularity, live.size());
        std::size_t chunk = (live.size() + n - 1) / n;
        bool reduced = false;

        // Subsets first: a single chunk that still fails is the
        // biggest possible reduction.
        for (std::size_t c = 0; c < n && !reduced; ++c) {
            std::size_t begin = c * chunk;
            std::size_t end = std::min(begin + chunk, live.size());
            if (begin >= end)
                continue;
            std::vector<std::size_t> subset(live.begin() + begin,
                                            live.begin() + end);
            ++st.probes;
            if (stillFails(withEvents(failing, subset))) {
                live = std::move(subset);
                granularity = 2;
                reduced = true;
            }
        }

        // Complements: drop one chunk at a time.
        for (std::size_t c = 0; c < n && !reduced && n > 1; ++c) {
            std::size_t begin = c * chunk;
            std::size_t end = std::min(begin + chunk, live.size());
            if (begin >= end)
                continue;
            std::vector<std::size_t> rest;
            rest.reserve(live.size() - (end - begin));
            rest.insert(rest.end(), live.begin(),
                        live.begin() + begin);
            rest.insert(rest.end(), live.begin() + end, live.end());
            if (rest.empty())
                continue;
            ++st.probes;
            if (stillFails(withEvents(failing, rest))) {
                live = std::move(rest);
                granularity = std::max<std::size_t>(granularity - 1,
                                                    2);
                reduced = true;
            }
        }

        if (!reduced) {
            if (n >= live.size())
                break; // single events tried; 1-minimal
            granularity = std::min(granularity * 2, live.size());
        }
    }

    ChaosSchedule out = withEvents(failing, live);
    st.minimizedEvents = out.events.size();
    return out;
}

} // namespace tmi::chaos
