/**
 * @file
 * Failing-schedule minimization (delta debugging).
 *
 * A campaign failure usually arrives wrapped in noise: the generated
 * schedule armed four points with windows and bursts, but the bug
 * needs only one of them. minimizeSchedule() is classic ddmin over
 * the schedule's event list: it repeatedly re-runs the scenario with
 * subsets (and complements of subsets) of the events, keeping any
 * smaller schedule that still fails, until the result is 1-minimal --
 * removing any single remaining event makes the failure disappear.
 *
 * The predicate is a callback so the minimizer is policy-free: the
 * campaign passes "re-run through runExperiment and judge against
 * the golden", tests pass synthetic predicates. Every probe the
 * minimizer makes is deterministic (the scenario replays from its
 * seeds), so minimization itself is reproducible.
 */

#ifndef TMI_CHAOS_MINIMIZE_HH
#define TMI_CHAOS_MINIMIZE_HH

#include <functional>

#include "chaos/schedule.hh"

namespace tmi::chaos
{

/** Bookkeeping from one minimization. */
struct MinimizeStats
{
    /** Predicate evaluations (each one is a full re-run). */
    unsigned probes = 0;
    /** Events in the schedule before / after. */
    std::size_t originalEvents = 0;
    std::size_t minimizedEvents = 0;
};

/**
 * Shrink @p failing to a 1-minimal reproducer.
 *
 * @p stillFails must return true when the given schedule reproduces
 * the failure. It is assumed (and not re-checked) that
 * stillFails(failing) is true; if it is not, the original schedule
 * comes back unchanged once every probe returns false.
 */
ChaosSchedule
minimizeSchedule(const ChaosSchedule &failing,
                 const std::function<bool(const ChaosSchedule &)>
                     &stillFails,
                 MinimizeStats *stats = nullptr);

} // namespace tmi::chaos

#endif // TMI_CHAOS_MINIMIZE_HH
