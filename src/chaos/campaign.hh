/**
 * @file
 * The chaos campaign: N randomized fault schedules per evaluation
 * cell, executed on the sweep runner, judged by the differential
 * oracle, failures shrunk to replayable reproducers.
 *
 * A campaign runs in three phases:
 *
 *  1. goldens: every (workload x treatment) cell runs once
 *     fault-free to capture its end-state digest and makespan. The
 *     makespan doubles as the horizon for drawing firing windows.
 *  2. chaos: `schedules` generated scenarios per cell fan out
 *     through driver::Runner (retries, timeouts, any worker count);
 *     each result is judged against its cell's golden as it is
 *     delivered, in job-id order -- the campaign CSV is therefore
 *     byte-identical for 1 or N workers.
 *  3. minimize: the first few failures are delta-debugged down to
 *     1-minimal schedules; the caller can serialize those as
 *     reproducer spec files (writeScheduleSpec).
 *
 * chaosCsvHeader()/chaosCsvRow() define the campaign CSV schema;
 * scripts/check_chaos.py validates files against it.
 */

#ifndef TMI_CHAOS_CAMPAIGN_HH
#define TMI_CHAOS_CAMPAIGN_HH

#include <iosfwd>

#include "chaos/minimize.hh"
#include "chaos/oracle.hh"
#include "chaos/schedule.hh"
#include "driver/runner.hh"
#include "driver/supervisor.hh"

namespace tmi::chaos
{

/** What to run: the cells, how many schedules, and the knobs. */
struct CampaignSpec
{
    /** Template config (deep knobs, threads, scale, budget...). */
    Config base;
    /** Cells = workloads x treatments (both required non-empty). */
    std::vector<std::string> workloads;
    std::vector<Treatment> treatments;
    /** Generated schedules per cell. */
    std::uint64_t schedules = 16;
    /** Seed every schedule derives from (the replay key). */
    std::uint64_t campaignSeed = 1;
    GeneratorOptions generator;

    /** TEST-ONLY: run the whole campaign against the Sheriff
     *  dissolve-ordering regression hook (chaos regression demo). */
    bool sheriffBuggyDissolve = false;

    /** Delta-debug failing schedules (phase 3). */
    bool minimizeFailures = true;
    /** Failures minimized per campaign (each probe is a full run). */
    unsigned minimizeLimit = 4;

    /** Every constraint violation (empty = runnable). */
    std::vector<ConfigError> validate() const;

    /** Golden cells + chaos runs the campaign will execute. */
    std::uint64_t totalRuns() const;
};

/** One CSV row: a golden cell run or a judged chaos run. */
struct CampaignRow
{
    std::uint64_t id = 0;    //!< dense, goldens first
    bool golden = false;
    /** The scenario (events empty for goldens; run cell always
     *  filled in, so a row is self-describing). */
    ChaosSchedule schedule;
    driver::JobStatus status = driver::JobStatus::Cancelled;
    Judgement judgement;     //!< goldens: Pass/"golden baseline"
    RunResult run;
    std::uint64_t goldenDigest = 0;
    /** cycles / golden cycles (1.0 for goldens, 0 when unknown). */
    double slowdown = 0;
};

/** Everything a campaign produced. */
struct CampaignOutcome
{
    std::vector<CampaignRow> rows; //!< goldens, then chaos runs

    /** @name Chaos-run tallies (goldens not counted) */
    /// @{
    std::uint64_t judged = 0;
    std::uint64_t passed = 0;
    std::uint64_t failed = 0;
    std::uint64_t skipped = 0; //!< NoDigest / cancelled cells
    /// @}

    /** Rows (goldens included) whose job did not end status=ok:
     *  host failures, timeouts, quarantined poison jobs, cancelled
     *  cells. Chaos-run failures also show up in `failed` (they are
     *  judged RunFailed); golden failures and cancellations appear
     *  only here -- a healthy campaign needs both at zero. */
    std::uint64_t jobFailures = 0;

    /** A minimized failure, ready to serialize and check in. */
    struct Reproducer
    {
        ChaosSchedule minimized;
        MinimizeStats stats;
        Judgement judgement; //!< verdict of the minimized replay
    };
    std::vector<Reproducer> reproducers;

    /** Every executed run satisfied its oracle. */
    bool allPassed() const { return failed == 0; }

    /** allPassed *and* every job actually ran: the exit-status
     *  predicate (a campaign whose jobs crashed must not report
     *  success just because the survivors passed). */
    bool clean() const { return failed == 0 && jobFailures == 0; }
};

/** @name Campaign CSV schema */
/// @{
/** Header line (no trailing newline). */
const char *chaosCsvHeader();

/** One row (no trailing newline; reason sanitized for CSV). */
std::string chaosCsvRow(const CampaignRow &row);
/// @}

/**
 * Run @p spec on @p runner, streaming CSV rows to @p csv (header
 * included; null = no CSV). Row order -- and therefore the CSV --
 * depends only on the spec, never on worker count or timing.
 */
CampaignOutcome runCampaign(const CampaignSpec &spec,
                            driver::Runner &runner,
                            std::ostream *csv = nullptr);

/** Orchestration policy for a crash-safe sharded campaign. */
struct ShardedCampaignOptions
{
    /** Shards, journal dir (required), resume, kill budget... The
     *  goldens and chaos phases journal into the `goldens/` and
     *  `chaos/` subdirectories of ShardOptions::journalDir. */
    driver::ShardOptions shard;
    /** Retain every CampaignRow in the outcome (tests, benches).
     *  Off (the default) keeps campaign memory flat: rows stream to
     *  the CSV and the tallies, and only the few failures queued for
     *  minimization are held. */
    bool collectRows = false;
};

/**
 * runCampaign on the shard supervisor: worker processes instead of
 * worker threads, per-shard journals instead of in-memory buffering.
 * A crashing schedule costs its shard generation, not the campaign;
 * a supervisor killed at any point resumes (opts.shard.resume) from
 * the journals and still produces a CSV byte-identical to an
 * uninterrupted runCampaign of the same spec. @p orchestration (may
 * be null) receives the summed supervisor stats of both phases.
 */
CampaignOutcome
runCampaignSharded(const CampaignSpec &spec,
                   const ShardedCampaignOptions &opts,
                   std::ostream *csv = nullptr,
                   driver::ShardRunStats *orchestration = nullptr);

/**
 * Replay one schedule: run its cell fault-free for the golden, then
 * run the schedule and judge. @p base supplies the deep templates
 * (default Config{} matches what campaigns use). The returned row is
 * a chaos row (golden == false).
 */
CampaignRow replaySchedule(const ChaosSchedule &schedule,
                           const Config &base = {});

} // namespace tmi::chaos

#endif // TMI_CHAOS_CAMPAIGN_HH
