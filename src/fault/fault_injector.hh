/**
 * @file
 * Deterministic, seeded fault injection for the simulated stack.
 *
 * Real deployments of Tmi sit on unreliable foundations: PEBS drops
 * and corrupts records, fork can fail mid-conversion, twin pages may
 * be unobtainable under memory pressure, and a thread can refuse to
 * stop at the T2P stop point. The FaultInjector lets experiments and
 * tests arm *named fault points* at those layers and have them fire
 * on a deterministic, replayable schedule.
 *
 * Each armed point owns its own xoshiro stream seeded from
 * (global seed, hash(point name)), so a point's fire pattern depends
 * only on its own query sequence -- arming or querying other points
 * never perturbs it, and a failing run replays exactly from the seed.
 *
 * Querying an unarmed point is a hash lookup on a usually-empty
 * table; the `enabled()` fast path lets hot code skip even that.
 * Fault checks never charge simulated cycles, so a run with no armed
 * points is cycle-identical to one on a build without the framework.
 */

#ifndef TMI_FAULT_FAULT_INJECTOR_HH
#define TMI_FAULT_FAULT_INJECTOR_HH

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"

namespace tmi
{

namespace obs
{
class TraceRecorder;
} // namespace obs

/** Canonical fault point names (one per injectable failure). */
namespace faultpoint
{
/** PEBS ring buffer full: the record is dropped and counted lost. */
inline constexpr const char *perfRingOverflow = "perf.ring_overflow";
/** The PEBS assist loses the record entirely (no ring slot used). */
inline constexpr const char *perfDropRecord = "perf.drop_record";
/** The sampled data address is corrupted beyond the usual skid. */
inline constexpr const char *perfCorruptAddr = "perf.corrupt_addr";
/** The sampled PC misses the instruction table (wild PC). */
inline constexpr const char *perfWildPc = "perf.wild_pc";
/** Physical memory exhausted at a COW fault: no private frame. */
inline constexpr const char *memFrameExhausted = "mem.frame_exhausted";
/** fork() fails while cloning an address space mid-T2P. */
inline constexpr const char *memCloneFail = "mem.clone_fail";
/** Twin snapshot allocation fails at a COW fault. */
inline constexpr const char *ptsbTwinAllocFail = "ptsb.twin_alloc_fail";
/** A commit degenerates (cold caches, huge diff): cost inflates. */
inline constexpr const char *ptsbOversizeCommit = "ptsb.oversize_commit";
/** A thread refuses to stop at the T2P stop point in budget. */
inline constexpr const char *schedStopTimeout = "sched.stop_timeout";
/** The allocator's per-object metadata is corrupted at free(): the
 *  size-class record is unreadable, so the object leaks instead of
 *  being recycled. */
inline constexpr const char *allocMetadataCorrupt =
    "alloc.metadata_corrupt";
/** A size class cannot refill its slab (address space / arena
 *  exhaustion); the request falls back to the large-object path. */
inline constexpr const char *allocSizeClassExhausted =
    "alloc.size_class_exhausted";
/** A speculative region aborts with no architectural cause (the
 *  hardware reserves the right; firmware erratas exercise it). */
inline constexpr const char *htmSpuriousAbort = "htm.spurious_abort";
/** Capacity accounting books a touched line twice: the txn aborts
 *  earlier than its true read/write footprint warrants. */
inline constexpr const char *htmCapacityMisaccount =
    "htm.capacity_misaccount";
/** The fallback path refuses the real lock and re-enters retry --
 *  the livelock-by-abort failure the abort-storm watchdog guards. */
inline constexpr const char *htmFallbackStuck = "htm.fallback_stuck";
} // namespace faultpoint

/** One entry of the canonical fault-point registry. */
struct FaultPointInfo
{
    const char *name;    //!< e.g. "perf.ring_overflow"
    const char *summary; //!< one-line description for --list output
};

/**
 * When an armed point fires. Triggers compose: a query fires if ANY
 * armed trigger matches, subject to the @ref maxFires cap and -- when
 * a firing window is set -- only while simulated time is inside it.
 */
struct FaultSpec
{
    /** Per-query fire probability (0 disables the random trigger). */
    double probability = 0.0;
    /** Fire on exactly the Nth query, 1-based (0 disables). */
    std::uint64_t fireAt = 0;
    /** Fire on every Nth query (0 disables). */
    std::uint64_t everyNth = 0;
    /** Stop firing after this many fires (0 = unlimited). */
    std::uint64_t maxFires = 0;

    /**
     * Scheduled firing: gate every trigger on simulated time being in
     * [windowStart, windowEnd) cycles. Both zero = always eligible;
     * windowEnd zero alone = unbounded window from windowStart. The
     * per-point random stream still advances outside the window, so a
     * windowed point's draw sequence stays a pure function of its
     * query index (replayable byte-for-byte from the seed).
     */
    std::uint64_t windowStart = 0;
    std::uint64_t windowEnd = 0;

    /**
     * Burst trigger: fire on @ref burstLen consecutive queries out of
     * every @ref burstPeriod (0 disables). Models clustered failures
     * such as a perf ring overflowing for a stretch of samples.
     */
    std::uint64_t burstLen = 0;
    std::uint64_t burstPeriod = 0;

    /** A point that always fires. */
    static FaultSpec
    always()
    {
        FaultSpec spec;
        spec.probability = 1.0;
        return spec;
    }

    /** A point that fires once, on the Nth query. */
    static FaultSpec
    once(std::uint64_t nth = 1)
    {
        FaultSpec spec;
        spec.fireAt = nth;
        spec.maxFires = 1;
        return spec;
    }

    /** A point that fires each query with probability @p p. */
    static FaultSpec
    withProbability(double p)
    {
        FaultSpec spec;
        spec.probability = p;
        return spec;
    }

    /** Restrict this spec to the cycle window [start, end). */
    FaultSpec
    inWindow(std::uint64_t start, std::uint64_t end) const
    {
        FaultSpec spec = *this;
        spec.windowStart = start;
        spec.windowEnd = end;
        return spec;
    }

    bool operator==(const FaultSpec &) const = default;
};

/** Registry of armed fault points; owned by the Machine. */
class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed = 0xfa17u);

    /**
     * The canonical fault-point registry: every injectable point with
     * a one-line summary, in a stable documented order. This is the
     * single source of truth for `--list-fault-points` and for chaos
     * schedule generation over "all points".
     */
    static std::span<const FaultPointInfo> allPoints();

    /** Arm (or re-arm, resetting counters) @p point with @p spec. */
    void arm(std::string_view point, const FaultSpec &spec);

    /** Disarm @p point; later queries return false again. */
    void disarm(std::string_view point);

    /** True if at least one point is armed (hot-path gate). */
    bool enabled() const { return !_points.empty(); }

    /**
     * Query @p point: should the operation it guards fail now?
     *
     * Deterministic given the seed and this point's query count;
     * unarmed points never fail.
     */
    bool shouldFail(std::string_view point);

    /** Times @p point has been queried. */
    std::uint64_t queries(std::string_view point) const;

    /** Times @p point has fired. */
    std::uint64_t fires(std::string_view point) const;

    /** Names of currently armed points, sorted (introspection). */
    std::vector<std::string> armedPoints() const;

    /** Total fires across all points. */
    std::uint64_t
    totalFires() const
    {
        return static_cast<std::uint64_t>(_statFires.value());
    }

    /** Seed the per-point streams derive from. */
    std::uint64_t seed() const { return _seed; }

    /** Wire the trace recorder: every fire emits a FaultFire event
     *  carrying the point name and fire ordinal (null disables). */
    void setTrace(obs::TraceRecorder *trace) { _trace = trace; }

    /**
     * Wire the simulated clock used to evaluate firing windows. Specs
     * with a window never fire until a clock is wired (the Machine
     * wires its scheduler at construction).
     */
    void setClock(std::function<std::uint64_t()> clock)
    {
        _clock = std::move(clock);
    }

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    struct Point
    {
        FaultSpec spec;
        Rng rng;
        std::uint64_t queries = 0;
        std::uint64_t fires = 0;

        explicit Point(const FaultSpec &s, std::uint64_t stream_seed)
            : spec(s), rng(stream_seed)
        {}
    };

    const Point *findPoint(std::string_view point) const;

    std::uint64_t _seed;
    std::unordered_map<std::string, Point> _points;
    obs::TraceRecorder *_trace = nullptr;
    std::function<std::uint64_t()> _clock;

    stats::Scalar _statQueries;
    stats::Scalar _statFires;
};

} // namespace tmi

#endif // TMI_FAULT_FAULT_INJECTOR_HH
