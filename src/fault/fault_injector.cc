#include "fault_injector.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace tmi
{

namespace
{

/**
 * The canonical registry, in documentation order (perf, mem, ptsb,
 * sched, alloc, htm). Adding a fault point means adding a
 * faultpoint:: constant, an entry here, and the call-site query --
 * tests assert the three stay in sync.
 */
constexpr FaultPointInfo kAllPoints[] = {
    {faultpoint::perfRingOverflow,
     "PEBS ring full: record dropped and counted lost"},
    {faultpoint::perfDropRecord,
     "PEBS assist loses the record entirely"},
    {faultpoint::perfCorruptAddr,
     "sampled data address corrupted beyond normal skid"},
    {faultpoint::perfWildPc,
     "sampled PC misses the instruction table"},
    {faultpoint::memFrameExhausted,
     "no physical frame for a COW fault"},
    {faultpoint::memCloneFail,
     "fork() fails while cloning an address space mid-T2P"},
    {faultpoint::ptsbTwinAllocFail,
     "twin snapshot allocation fails at a COW fault"},
    {faultpoint::ptsbOversizeCommit,
     "a PTSB commit degenerates and its cost inflates"},
    {faultpoint::schedStopTimeout,
     "a thread refuses to stop at the T2P stop point"},
    {faultpoint::allocMetadataCorrupt,
     "allocator per-object metadata corrupted at free()"},
    {faultpoint::allocSizeClassExhausted,
     "a size class cannot refill its slab"},
    {faultpoint::htmSpuriousAbort,
     "a speculative region aborts with no architectural cause"},
    {faultpoint::htmCapacityMisaccount,
     "txn capacity accounting books a touched line twice"},
    {faultpoint::htmFallbackStuck,
     "the fallback path refuses the real lock and re-enters retry"},
};

} // namespace

std::span<const FaultPointInfo>
FaultInjector::allPoints()
{
    return kAllPoints;
}

namespace
{

/** FNV-1a over the point name: stable across runs and platforms. */
std::uint64_t
hashName(std::string_view name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

FaultInjector::FaultInjector(std::uint64_t seed) : _seed(seed) {}

void
FaultInjector::arm(std::string_view point, const FaultSpec &spec)
{
    TMI_ASSERT(!point.empty(), "fault point needs a name");
    // Derive the stream from (seed, name) only: the fire pattern of
    // one point is independent of what else is armed or queried.
    std::uint64_t stream_seed = _seed ^ hashName(point);
    _points.insert_or_assign(std::string(point),
                             Point(spec, stream_seed));
    inform("fault: armed %s (p=%.3g fireAt=%lu everyNth=%lu "
           "maxFires=%lu window=[%lu,%lu) burst=%lu/%lu)",
           std::string(point).c_str(), spec.probability,
           static_cast<unsigned long>(spec.fireAt),
           static_cast<unsigned long>(spec.everyNth),
           static_cast<unsigned long>(spec.maxFires),
           static_cast<unsigned long>(spec.windowStart),
           static_cast<unsigned long>(spec.windowEnd),
           static_cast<unsigned long>(spec.burstLen),
           static_cast<unsigned long>(spec.burstPeriod));
}

void
FaultInjector::disarm(std::string_view point)
{
    _points.erase(std::string(point));
}

bool
FaultInjector::shouldFail(std::string_view point)
{
    if (_points.empty())
        return false;
    auto it = _points.find(std::string(point));
    if (it == _points.end())
        return false;

    Point &p = it->second;
    ++p.queries;
    ++_statQueries;

    // Draw the random trigger unconditionally (when armed) so the
    // stream position is a pure function of the query index.
    bool fired = p.spec.probability > 0.0 &&
                 p.rng.chance(p.spec.probability);
    if (p.spec.fireAt != 0 && p.queries == p.spec.fireAt)
        fired = true;
    if (p.spec.everyNth != 0 && p.queries % p.spec.everyNth == 0)
        fired = true;
    if (p.spec.burstPeriod != 0 &&
        (p.queries - 1) % p.spec.burstPeriod < p.spec.burstLen) {
        fired = true;
    }
    // The firing window gates the composed triggers but never the
    // draw above: a windowed point's stream position stays a pure
    // function of its query index.
    if (fired &&
        (p.spec.windowStart != 0 || p.spec.windowEnd != 0)) {
        std::uint64_t now = _clock ? _clock() : 0;
        bool inside = now >= p.spec.windowStart &&
                      (p.spec.windowEnd == 0 ||
                       now < p.spec.windowEnd);
        if (!inside || !_clock)
            fired = false;
    }
    if (fired && p.spec.maxFires != 0 && p.fires >= p.spec.maxFires)
        fired = false;
    if (!fired)
        return false;

    ++p.fires;
    ++_statFires;
    if (_trace) {
        _trace->recordHere(obs::EventKind::FaultFire, p.fires, 0,
                           it->first.c_str());
    }
    return true;
}

const FaultInjector::Point *
FaultInjector::findPoint(std::string_view point) const
{
    auto it = _points.find(std::string(point));
    return it == _points.end() ? nullptr : &it->second;
}

std::uint64_t
FaultInjector::queries(std::string_view point) const
{
    const Point *p = findPoint(point);
    return p ? p->queries : 0;
}

std::uint64_t
FaultInjector::fires(std::string_view point) const
{
    const Point *p = findPoint(point);
    return p ? p->fires : 0;
}

std::vector<std::string>
FaultInjector::armedPoints() const
{
    std::vector<std::string> names;
    names.reserve(_points.size());
    for (const auto &[name, point] : _points)
        names.push_back(name);
    std::sort(names.begin(), names.end());
    return names;
}

void
FaultInjector::regStats(stats::StatGroup &group)
{
    group.addScalar("faultQueries", &_statQueries,
                    "fault-point queries on armed points");
    group.addScalar("faultFires", &_statFires,
                    "fault-point fires (injected failures)");
}

} // namespace tmi
