#include "scheduler.hh"

namespace tmi
{

namespace
{
/// Scheduler whose thread is currently executing. thread_local so the
/// sweep driver can run independent machines on concurrent host
/// threads: each worker owns its machine's fibers end to end, and a
/// fiber only ever resumes on the host thread that created it.
thread_local SimScheduler *activeScheduler = nullptr;
} // namespace

SimThread::SimThread(ThreadId tid, std::string name, Func fn,
                     bool daemon, std::size_t stack_bytes)
    : _tid(tid), _name(std::move(name)), _fn(std::move(fn)),
      _daemon(daemon),
      _stack(std::make_unique<std::uint8_t[]>(stack_bytes)),
      _stackBytes(stack_bytes)
{
}

SimScheduler::SimScheduler(Cycles quantum) : _quantum(quantum)
{
    TMI_ASSERT(quantum > 0);
}

ThreadId
SimScheduler::spawn(std::string name, SimThread::Func fn, bool daemon)
{
    auto tid = static_cast<ThreadId>(_threads.size());
    auto thread = std::make_unique<SimThread>(
        tid, std::move(name), std::move(fn), daemon,
        std::size_t{256} * 1024);
    if (_current)
        thread->_clock = _current->_clock;

    fiberInit(thread->_ctx, thread->_stack.get(), thread->_stackBytes,
              &SimScheduler::trampoline, thread.get());

    if (!daemon)
        ++_liveNonDaemon;
    _threads.push_back(std::move(thread));
    ++_statSpawns;
    // A freshly spawned thread is runnable at the creator's clock:
    // cap the creator's remaining slice like wake() does.
    if (_current) {
        Cycles ready_at = _threads.back()->_clock;
        if (_current->_deadline > ready_at + _quantum)
            _current->_deadline = ready_at + _quantum;
    }
    return tid;
}

void
SimScheduler::trampoline(void *arg)
{
    auto *thread = static_cast<SimThread *>(arg);
    thread->_fn();
    activeScheduler->finishCurrent();
    panic("resumed a finished SimThread");
}

SimThread &
SimScheduler::thread(ThreadId tid)
{
    TMI_ASSERT(tid < _threads.size());
    return *_threads[tid];
}

std::size_t
SimScheduler::liveNonDaemonThreads() const
{
    std::size_t n = 0;
    for (const auto &t : _threads) {
        if (!t->_daemon && t->_state != SimThread::State::Finished)
            ++n;
    }
    return n;
}

SimThread *
SimScheduler::pickNext(Cycles &runner_up) const
{
    SimThread *best = nullptr;
    runner_up = ~Cycles{0};
    for (const auto &t : _threads) {
        if (t->_state != SimThread::State::Ready)
            continue;
        if (!best || t->_clock < best->_clock) {
            if (best)
                runner_up = std::min(runner_up, best->_clock);
            best = t.get();
        } else {
            runner_up = std::min(runner_up, t->_clock);
        }
    }
    return best;
}

RunOutcome
SimScheduler::run(Cycles max_cycles)
{
    TMI_ASSERT(!_running, "SimScheduler::run is not reentrant");
    _running = true;
    activeScheduler = this;

    RunOutcome outcome = RunOutcome::Completed;
    while (true) {
        if (_liveNonDaemon == 0) {
            outcome = RunOutcome::Completed;
            break;
        }
        if (_abort && _abort->load(std::memory_order_relaxed)) {
            outcome = RunOutcome::Timeout;
            break;
        }
        Cycles runner_up = 0;
        SimThread *next = pickNext(runner_up);
        if (!next) {
            outcome = RunOutcome::Deadlock;
            break;
        }
        if (next->_clock > max_cycles) {
            outcome = RunOutcome::Timeout;
            break;
        }
        Cycles base = (runner_up == ~Cycles{0}) ? next->_clock
                                                : runner_up;
        next->_deadline = base + _quantum;
        next->_state = SimThread::State::Running;
        _current = next;
        ++_statSwitches;
        fiberSwitch(_schedCtx, next->_ctx);
        _current = nullptr;
    }

    _running = false;
    activeScheduler = nullptr;
    return outcome;
}

void
SimScheduler::advance(Cycles cycles)
{
    TMI_ASSERT(_current, "advance outside a simulated thread");
    _current->_clock += cycles;
    // Daemons (e.g. the detection thread) never extend the makespan:
    // elapsed time is defined by application threads.
    if (!_current->_daemon && _current->_clock > _maxClock)
        _maxClock = _current->_clock;
    if (_current->_clock >= _current->_deadline)
        yield();
}

void
SimScheduler::yield()
{
    TMI_ASSERT(_current);
    SimThread *self = _current;
    self->_state = SimThread::State::Ready;
    fiberSwitch(self->_ctx, _schedCtx);
}

void
SimScheduler::block()
{
    TMI_ASSERT(_current);
    SimThread *self = _current;
    if (self->_wakePending) {
        self->_wakePending = false;
        if (self->_clock < self->_wakeClock)
            self->_clock = self->_wakeClock;
        return;
    }
    self->_state = SimThread::State::Blocked;
    fiberSwitch(self->_ctx, _schedCtx);
}

void
SimScheduler::wake(ThreadId tid, Cycles at_least)
{
    SimThread &t = thread(tid);
    if (t._state != SimThread::State::Blocked) {
        // Target has not blocked yet (it is Ready or Running between
        // enqueueing itself and calling block()). Record the wake so
        // block() becomes a no-op.
        TMI_ASSERT(t._state != SimThread::State::Finished,
                   "wake of finished thread");
        t._wakePending = true;
        if (t._wakeClock < at_least)
            t._wakeClock = at_least;
        return;
    }
    t._state = SimThread::State::Ready;
    if (t._clock < at_least)
        t._clock = at_least;
    // The woken thread may now be the earliest runnable one. Shorten
    // the current runner's slice so it does not race arbitrarily far
    // ahead of a thread that was blocked when the slice began.
    if (_current && _current->_deadline > t._clock + _quantum)
        _current->_deadline = t._clock + _quantum;
}

void
SimScheduler::sleepUntil(Cycles t)
{
    TMI_ASSERT(_current);
    if (_current->_clock < t)
        _current->_clock = t;
    if (!_current->_daemon && _current->_clock > _maxClock)
        _maxClock = _current->_clock;
    yield();
}

void
SimScheduler::penalize(ThreadId tid, Cycles cycles)
{
    SimThread &t = thread(tid);
    if (t._state == SimThread::State::Finished)
        return;
    t._clock += cycles;
    if (!t._daemon && t._clock > _maxClock)
        _maxClock = t._clock;
}

void
SimScheduler::finishCurrent()
{
    SimThread *self = _current;
    self->_state = SimThread::State::Finished;
    if (!self->_daemon) {
        TMI_ASSERT(_liveNonDaemon > 0);
        --_liveNonDaemon;
    }
    // The stack stays allocated until the scheduler is destroyed: we
    // are still executing on it until the swap below completes.
    fiberSwitch(self->_ctx, _schedCtx);
}

void
SimScheduler::regStats(stats::StatGroup &group)
{
    group.addScalar("contextSwitches", &_statSwitches,
                    "fiber switches performed");
    group.addScalar("threadsSpawned", &_statSpawns,
                    "simulated threads created");
}

} // namespace tmi
