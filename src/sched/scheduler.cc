#include "scheduler.hh"

#include <cstring>

// Checkpoint capture/apply copy raw fiber stacks. Under ASan those
// slices straddle stack redzones -- the poison lives in shadow
// memory, not in the bytes themselves -- so the intercepted memcpy
// would flag the copy, and a restored stack would run against stale
// shadow describing the aborted execution's frames. Unpoison around
// the copies; resumed frames re-poison themselves on entry.
#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer)
#include <sanitizer/asan_interface.h>
#define TMI_ASAN_UNPOISON(ptr, bytes)                                  \
    __asan_unpoison_memory_region((ptr), (bytes))
#else
#define TMI_ASAN_UNPOISON(ptr, bytes) ((void)0)
#endif

namespace tmi
{

namespace
{
/// Scheduler whose thread is currently executing. thread_local so the
/// sweep driver can run independent machines on concurrent host
/// threads: each worker owns its machine's fibers end to end, and a
/// fiber only ever resumes on the host thread that created it.
thread_local SimScheduler *activeScheduler = nullptr;
} // namespace

SimThread::SimThread(ThreadId tid, std::string name, Func fn,
                     bool daemon, std::size_t stack_bytes)
    : _tid(tid), _name(std::move(name)), _fn(std::move(fn)),
      _daemon(daemon),
      _stack(std::make_unique<std::uint8_t[]>(stack_bytes)),
      _stackBytes(stack_bytes)
{
}

SimScheduler::SimScheduler(Cycles quantum) : _quantum(quantum)
{
    TMI_ASSERT(quantum > 0);
}

ThreadId
SimScheduler::spawn(std::string name, SimThread::Func fn, bool daemon)
{
    auto tid = static_cast<ThreadId>(_threads.size());
    auto thread = std::make_unique<SimThread>(
        tid, std::move(name), std::move(fn), daemon,
        std::size_t{256} * 1024);
    if (_current)
        thread->_clock = _current->_clock;

    fiberInit(thread->_ctx, thread->_stack.get(), thread->_stackBytes,
              &SimScheduler::trampoline, thread.get());

    if (!daemon)
        ++_liveNonDaemon;
    _threads.push_back(std::move(thread));
    ++_statSpawns;
    // A freshly spawned thread is runnable at the creator's clock:
    // cap the creator's remaining slice like wake() does.
    if (_current) {
        Cycles ready_at = _threads.back()->_clock;
        if (_current->_deadline > ready_at + _quantum)
            _current->_deadline = ready_at + _quantum;
    }
    return tid;
}

void
SimScheduler::trampoline(void *arg)
{
    auto *thread = static_cast<SimThread *>(arg);
    thread->_fn();
    activeScheduler->finishCurrent();
    panic("resumed a finished SimThread");
}

SimThread &
SimScheduler::thread(ThreadId tid)
{
    TMI_ASSERT(tid < _threads.size());
    return *_threads[tid];
}

std::size_t
SimScheduler::liveNonDaemonThreads() const
{
    std::size_t n = 0;
    for (const auto &t : _threads) {
        if (!t->_daemon && t->_state != SimThread::State::Finished)
            ++n;
    }
    return n;
}

SimThread *
SimScheduler::pickNext(Cycles &runner_up) const
{
    SimThread *best = nullptr;
    runner_up = ~Cycles{0};
    for (const auto &t : _threads) {
        if (t->_state != SimThread::State::Ready)
            continue;
        if (!best || t->_clock < best->_clock) {
            if (best)
                runner_up = std::min(runner_up, best->_clock);
            best = t.get();
        } else {
            runner_up = std::min(runner_up, t->_clock);
        }
    }
    return best;
}

RunOutcome
SimScheduler::run(Cycles max_cycles)
{
    TMI_ASSERT(!_running, "SimScheduler::run is not reentrant");
    _running = true;
    activeScheduler = this;

    RunOutcome outcome = RunOutcome::Completed;
    while (true) {
        if (_liveNonDaemon == 0) {
            outcome = RunOutcome::Completed;
            break;
        }
        if (_abort && _abort->load(std::memory_order_relaxed)) {
            outcome = RunOutcome::Timeout;
            break;
        }
        Cycles runner_up = 0;
        SimThread *next = pickNext(runner_up);
        if (!next) {
            outcome = RunOutcome::Deadlock;
            break;
        }
        if (next->_clock > max_cycles) {
            outcome = RunOutcome::Timeout;
            break;
        }
        Cycles base = (runner_up == ~Cycles{0}) ? next->_clock
                                                : runner_up;
        next->_deadline = base + _quantum;
        next->_state = SimThread::State::Running;
        _current = next;
        ++_statSwitches;
        fiberSwitch(_schedCtx, next->_ctx);
        // Fiber services: the thread switched out asking us to copy
        // its (now suspended) stack, then be resumed immediately --
        // no scheduling decision, no time charge.
        while (_service != FiberService::None) {
            FiberService svc = _service;
            _service = FiberService::None;
            if (svc == FiberService::Checkpoint)
                captureCheckpoint(*next, *_serviceCk);
            else
                applyCheckpoint(*next, *_serviceCk);
            _serviceCk = nullptr;
            fiberSwitch(_schedCtx, next->_ctx);
        }
        _current = nullptr;
    }

    _running = false;
    activeScheduler = nullptr;
    return outcome;
}

void
SimScheduler::advance(Cycles cycles)
{
    TMI_ASSERT(_current, "advance outside a simulated thread");
    _current->_clock += cycles;
    // Daemons (e.g. the detection thread) never extend the makespan:
    // elapsed time is defined by application threads.
    if (!_current->_daemon && _current->_clock > _maxClock)
        _maxClock = _current->_clock;
    if (_current->_clock >= _current->_deadline)
        yield();
}

void
SimScheduler::yield()
{
    TMI_ASSERT(_current);
    SimThread *self = _current;
    self->_state = SimThread::State::Ready;
    fiberSwitch(self->_ctx, _schedCtx);
}

void
SimScheduler::block()
{
    TMI_ASSERT(_current);
    SimThread *self = _current;
    if (self->_wakePending) {
        self->_wakePending = false;
        if (self->_clock < self->_wakeClock)
            self->_clock = self->_wakeClock;
        return;
    }
    self->_state = SimThread::State::Blocked;
    fiberSwitch(self->_ctx, _schedCtx);
}

void
SimScheduler::wake(ThreadId tid, Cycles at_least)
{
    SimThread &t = thread(tid);
    if (t._state != SimThread::State::Blocked) {
        // Target has not blocked yet (it is Ready or Running between
        // enqueueing itself and calling block()). Record the wake so
        // block() becomes a no-op.
        TMI_ASSERT(t._state != SimThread::State::Finished,
                   "wake of finished thread");
        t._wakePending = true;
        if (t._wakeClock < at_least)
            t._wakeClock = at_least;
        return;
    }
    t._state = SimThread::State::Ready;
    if (t._clock < at_least)
        t._clock = at_least;
    // The woken thread may now be the earliest runnable one. Shorten
    // the current runner's slice so it does not race arbitrarily far
    // ahead of a thread that was blocked when the slice began.
    if (_current && _current->_deadline > t._clock + _quantum)
        _current->_deadline = t._clock + _quantum;
}

void
SimScheduler::sleepUntil(Cycles t)
{
    TMI_ASSERT(_current);
    if (_current->_clock < t)
        _current->_clock = t;
    if (!_current->_daemon && _current->_clock > _maxClock)
        _maxClock = _current->_clock;
    yield();
}

void
SimScheduler::penalize(ThreadId tid, Cycles cycles)
{
    SimThread &t = thread(tid);
    if (t._state == SimThread::State::Finished)
        return;
    t._clock += cycles;
    if (!t._daemon && t._clock > _maxClock)
        _maxClock = t._clock;
}

void
SimScheduler::checkpointCurrent(FiberCheckpoint &ck)
{
    TMI_ASSERT(_current, "checkpoint outside a simulated thread");
    SimThread *self = _current;
    _service = FiberService::Checkpoint;
    _serviceCk = &ck;
    // The run loop captures while this frame is suspended, then
    // switches straight back here. A later restore of @p ck resumes
    // at exactly this point too -- callers disambiguate via
    // ck.resumes (see FiberCheckpoint).
    fiberSwitch(self->_ctx, _schedCtx);
}

void
SimScheduler::restoreCurrent(FiberCheckpoint &ck)
{
    TMI_ASSERT(_current, "restore outside a simulated thread");
    TMI_ASSERT(ck.valid(), "restore from an empty checkpoint");
    _service = FiberService::Restore;
    _serviceCk = &ck;
    // This frame is abandoned: the run loop rewinds the stack and
    // resumes the checkpoint's capture point instead.
    fiberSwitch(_current->_ctx, _schedCtx);
    panic("resumed past a fiber restore");
}

void
SimScheduler::hijackThread(ThreadId tid, FiberCheckpoint &ck)
{
    SimThread &t = thread(tid);
    TMI_ASSERT(&t != _current, "self-hijack; use restoreCurrent");
    TMI_ASSERT(t._state == SimThread::State::Ready ||
                   t._state == SimThread::State::Blocked,
               "hijack of a thread that is not suspended");
    TMI_ASSERT(ck.valid(), "hijack from an empty checkpoint");
    // The victim is suspended: its register frame lives inside the
    // saved slice, so overwriting stack + context is a complete
    // rewind. It resumes at its capture point when next scheduled.
    applyCheckpoint(t, ck);
}

void
SimScheduler::captureCheckpoint(SimThread &t, FiberCheckpoint &ck)
{
    std::uint8_t *base = t._stack.get();
#if TMI_FAST_FIBERS
    // Live slice: [saved sp, stack top). Everything below sp is dead.
    auto *sp = static_cast<std::uint8_t *>(t._ctx.sp);
    TMI_ASSERT(sp >= base && sp <= base + t._stackBytes,
               "fiber sp outside its stack");
    std::size_t offset = static_cast<std::size_t>(sp - base);
#else
    // ucontext gives no portable stack pointer: save the whole stack.
    std::size_t offset = 0;
#endif
    std::size_t bytes = t._stackBytes - offset;
    if (!ck.data || bytes > ck.bytes)
        ck.data = std::make_unique<std::uint8_t[]>(bytes);
    TMI_ASAN_UNPOISON(base + offset, bytes);
    std::memcpy(ck.data.get(), base + offset, bytes);
    ck.bytes = bytes;
    ck.offset = offset;
    ck.ctx = t._ctx;
    ++_statCheckpoints;
}

void
SimScheduler::applyCheckpoint(SimThread &t, FiberCheckpoint &ck)
{
    TMI_ASSERT(ck.offset + ck.bytes == t._stackBytes,
               "checkpoint does not fit this thread's stack");
    // The whole stack, not just the restored slice: frames the
    // aborted execution formed below the capture point left stale
    // poison in the dead zone too.
    TMI_ASAN_UNPOISON(t._stack.get(), t._stackBytes);
    std::memcpy(t._stack.get() + ck.offset, ck.data.get(), ck.bytes);
    t._ctx = ck.ctx;
    ++ck.resumes;
    ++_statRestores;
}

void
SimScheduler::finishCurrent()
{
    SimThread *self = _current;
    self->_state = SimThread::State::Finished;
    if (!self->_daemon) {
        TMI_ASSERT(_liveNonDaemon > 0);
        --_liveNonDaemon;
    }
    // The stack stays allocated until the scheduler is destroyed: we
    // are still executing on it until the swap below completes.
    fiberSwitch(self->_ctx, _schedCtx);
}

void
SimScheduler::regStats(stats::StatGroup &group)
{
    group.addScalar("contextSwitches", &_statSwitches,
                    "fiber switches performed");
    group.addScalar("threadsSpawned", &_statSpawns,
                    "simulated threads created");
    group.addScalar("checkpoints", &_statCheckpoints,
                    "fiber continuations captured");
    group.addScalar("restores", &_statRestores,
                    "fiber rollbacks applied");
}

} // namespace tmi
