/**
 * @file
 * Scheduling semantics for simulated synchronization objects.
 *
 * A SyncManager tracks mutex/barrier/condvar state keyed by a
 * canonical 64-bit id (the simulated address of the object, or of the
 * process-shared object Tmi redirects it to). The *memory traffic* a
 * sync operation performs (e.g. the CAS on the lock word that causes
 * spinlockpool's false sharing) is issued by the Machine layer; this
 * class only provides blocking/wakeup semantics and base costs.
 */

#ifndef TMI_SCHED_SYNC_HH
#define TMI_SCHED_SYNC_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sched/scheduler.hh"

namespace tmi
{

/** Base cycle costs of synchronization operations. */
struct SyncCosts
{
    Cycles mutexUncontended = 25;  //!< lock/unlock fast path
    Cycles mutexHandoff = 120;     //!< wakeup latency to a waiter
    Cycles barrier = 150;          //!< per-thread barrier overhead
    Cycles condSignal = 60;        //!< signal/broadcast base cost

    bool operator==(const SyncCosts &) const = default;
};

/** Mutexes, barriers, and condition variables for simulated threads. */
class SyncManager
{
  public:
    explicit SyncManager(SimScheduler &sched, SyncCosts costs = {})
        : _sched(sched), _costs(costs)
    {}

    /** @name Mutexes */
    /// @{
    void mutexInit(std::uint64_t id);
    bool mutexExists(std::uint64_t id) const;
    void mutexLock(std::uint64_t id);
    /** @retval true if the lock was acquired. */
    bool mutexTryLock(std::uint64_t id);
    void mutexUnlock(std::uint64_t id);
    /** True if currently held (by anyone). */
    bool mutexHeld(std::uint64_t id) const;
    /// @}

    /** @name Barriers */
    /// @{
    void barrierInit(std::uint64_t id, unsigned parties);
    void barrierWait(std::uint64_t id);
    /// @}

    /** @name Condition variables */
    /// @{
    void condInit(std::uint64_t id);
    /** Atomically release @p mutex_id and wait; reacquires on wake. */
    void condWait(std::uint64_t id, std::uint64_t mutex_id);
    void condSignal(std::uint64_t id);
    void condBroadcast(std::uint64_t id);
    /// @}

    /** Total lock acquisitions that had to block. */
    std::uint64_t contendedAcquires() const
    {
        return static_cast<std::uint64_t>(_statContended.value());
    }

    /** Total lock acquisitions. */
    std::uint64_t acquires() const
    {
        return static_cast<std::uint64_t>(_statAcquires.value());
    }

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    struct MutexState
    {
        bool locked = false;
        ThreadId owner = 0;
        std::deque<ThreadId> waiters;
    };

    struct BarrierState
    {
        unsigned parties = 0;
        unsigned arrived = 0;
        Cycles maxArrival = 0;
        std::vector<ThreadId> waiting;
    };

    struct CondState
    {
        std::deque<ThreadId> waiters;
    };

    MutexState &mutexRef(std::uint64_t id);
    BarrierState &barrierRef(std::uint64_t id);
    CondState &condRef(std::uint64_t id);

    SimScheduler &_sched;
    SyncCosts _costs;
    std::unordered_map<std::uint64_t, MutexState> _mutexes;
    std::unordered_map<std::uint64_t, BarrierState> _barriers;
    std::unordered_map<std::uint64_t, CondState> _conds;

    stats::Scalar _statAcquires;
    stats::Scalar _statContended;
    stats::Scalar _statBarrierWaits;
    stats::Scalar _statCondWaits;
};

} // namespace tmi

#endif // TMI_SCHED_SYNC_HH
