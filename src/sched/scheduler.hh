/**
 * @file
 * Deterministic green-thread scheduler for the simulated machine.
 *
 * Simulated application threads are ucontext fibers with per-thread
 * cycle clocks. The scheduler always resumes the runnable thread with
 * the smallest clock and lets it run until it blocks or exceeds its
 * quantum, approximating a globally time-ordered interleaving while
 * keeping context-switch costs amortized over many accesses.
 *
 * All scheduling decisions are deterministic: ties break by thread id
 * and every source of randomness in workloads is seeded, so a given
 * experiment configuration always produces the same execution.
 */

#ifndef TMI_SCHED_SCHEDULER_HH
#define TMI_SCHED_SCHEDULER_HH

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sched/fiber.hh"

namespace tmi
{

/** Why SimScheduler::run returned. */
enum class RunOutcome
{
    Completed, //!< all non-daemon threads finished
    Timeout,   //!< simulated time exceeded the budget (hang/livelock)
    Deadlock,  //!< every live thread is blocked
};

/** One simulated thread (a ucontext fiber with a cycle clock). */
class SimThread
{
  public:
    using Func = std::function<void()>;

    enum class State : std::uint8_t
    {
        Ready,
        Running,
        Blocked,
        Finished,
    };

    SimThread(ThreadId tid, std::string name, Func fn, bool daemon,
              std::size_t stack_bytes);

    ThreadId tid() const { return _tid; }
    const std::string &name() const { return _name; }
    bool daemon() const { return _daemon; }
    State state() const { return _state; }
    Cycles clock() const { return _clock; }

  private:
    friend class SimScheduler;

    ThreadId _tid;
    std::string _name;
    Func _fn;
    bool _daemon;
    State _state = State::Ready;
    Cycles _clock = 0;
    Cycles _deadline = 0;
    /// A wake() arrived while we were still running (e.g. a condvar
    /// signal between releasing the mutex and blocking); consume it
    /// in block() instead of sleeping.
    bool _wakePending = false;
    Cycles _wakeClock = 0;
    std::unique_ptr<std::uint8_t[]> _stack;
    std::size_t _stackBytes;
    FiberContext _ctx;
};

/** Min-clock-first cooperative scheduler over SimThreads. */
class SimScheduler
{
  public:
    /** @param quantum cycles a thread may run past the runner-up. */
    explicit SimScheduler(Cycles quantum = 200);

    /**
     * Create a simulated thread.
     *
     * May be called before run() or from inside a running thread
     * (pthread_create). The new thread's clock starts at the
     * creator's clock (or 0 from outside).
     *
     * @param daemon daemon threads do not keep the simulation alive;
     *               they are abandoned when all others finish.
     */
    ThreadId spawn(std::string name, SimThread::Func fn,
                   bool daemon = false);

    /**
     * Run until completion, deadlock, or @p max_cycles of simulated
     * time. Must be called from outside any simulated thread.
     */
    RunOutcome run(Cycles max_cycles = ~Cycles{0});

    /** The currently executing simulated thread; null outside run. */
    SimThread *current() { return _current; }

    /** Clock of the current thread (call only from inside a thread). */
    Cycles
    now() const
    {
        TMI_ASSERT(_current);
        return _current->_clock;
    }

    /** Largest clock any thread has reached (global time bound). */
    Cycles maxClock() const { return _maxClock; }

    /**
     * Install a host-side cancellation token. When @p flag becomes
     * true (set by another host thread, e.g. the sweep driver's
     * timeout watchdog), run() stops at the next fiber switch and
     * returns RunOutcome::Timeout. Pass nullptr to clear.
     */
    void setAbortFlag(const std::atomic<bool> *flag) { _abort = flag; }

    /**
     * Charge @p cycles to the current thread and yield if its
     * quantum expired. This is the only way simulated time advances.
     */
    void advance(Cycles cycles);

    /** Voluntarily return to the scheduler (stay runnable). */
    void yield();

    /** Block the current thread until another thread wakes it. */
    void block();

    /**
     * Make @p tid runnable again, no earlier than simulated time
     * @p at_least (the waker's clock, so causality is preserved).
     */
    void wake(ThreadId tid, Cycles at_least);

    /** Sleep the current thread until simulated time @p t. */
    void sleepUntil(Cycles t);

    /**
     * Add @p cycles to @p tid's clock without running it -- used to
     * charge stopped threads for work done *to* them (e.g. the
     * ptrace stop during thread-to-process conversion).
     */
    void penalize(ThreadId tid, Cycles cycles);

    /** Thread accessor (valid for any spawned tid). */
    SimThread &thread(ThreadId tid);

    /** Number of threads ever spawned. */
    std::size_t threadCount() const { return _threads.size(); }

    /** Count of live (not finished) non-daemon threads. */
    std::size_t liveNonDaemonThreads() const;

    /** Total context switches performed (diagnostic). */
    std::uint64_t contextSwitches() const
    {
        return static_cast<std::uint64_t>(_statSwitches.value());
    }

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    static void trampoline(void *arg);
    void finishCurrent();
    void switchToScheduler();
    SimThread *pickNext(Cycles &runner_up) const;

    Cycles _quantum;
    std::vector<std::unique_ptr<SimThread>> _threads;
    SimThread *_current = nullptr;
    FiberContext _schedCtx;
    bool _running = false;
    /** Cached liveNonDaemonThreads(): the run loop consults it every
     *  switch, and the O(threads) scan showed up in host profiles. */
    std::size_t _liveNonDaemon = 0;
    Cycles _maxClock = 0;
    const std::atomic<bool> *_abort = nullptr;

    stats::Scalar _statSwitches;
    stats::Scalar _statSpawns;
};

} // namespace tmi

#endif // TMI_SCHED_SCHEDULER_HH
