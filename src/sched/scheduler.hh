/**
 * @file
 * Deterministic green-thread scheduler for the simulated machine.
 *
 * Simulated application threads are ucontext fibers with per-thread
 * cycle clocks. The scheduler always resumes the runnable thread with
 * the smallest clock and lets it run until it blocks or exceeds its
 * quantum, approximating a globally time-ordered interleaving while
 * keeping context-switch costs amortized over many accesses.
 *
 * All scheduling decisions are deterministic: ties break by thread id
 * and every source of randomness in workloads is seeded, so a given
 * experiment configuration always produces the same execution.
 */

#ifndef TMI_SCHED_SCHEDULER_HH
#define TMI_SCHED_SCHEDULER_HH

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sched/fiber.hh"

namespace tmi
{

/** Why SimScheduler::run returned. */
enum class RunOutcome
{
    Completed, //!< all non-daemon threads finished
    Timeout,   //!< simulated time exceeded the budget (hang/livelock)
    Deadlock,  //!< every live thread is blocked
};

/**
 * A captured fiber continuation: the register frame plus the live
 * slice of the thread's stack at capture time. Restoring one rewinds
 * the thread to the capture point with every local intact -- the
 * rollback primitive behind transactional aborts (baselines/htm).
 *
 * Arrival detection: a caller that latches `resumes` in a LOCAL
 * variable before capturing can tell a rollback from a plain return,
 * because the local is part of the snapshot (and therefore rewound)
 * while the heap-resident counter is not:
 *
 *   std::uint64_t before = ck.resumes;   // saved in the snapshot
 *   sched.checkpointCurrent(ck);
 *   bool rolled_back = ck.resumes != before;
 */
struct FiberCheckpoint
{
    FiberContext ctx;                     //!< suspended register frame
    std::unique_ptr<std::uint8_t[]> data; //!< saved stack slice
    std::size_t bytes = 0;                //!< slice length
    std::size_t offset = 0;               //!< slice start from stack base
    /** Restores performed from this checkpoint (see above). */
    std::uint64_t resumes = 0;

    bool valid() const { return bytes != 0; }

    void
    reset()
    {
        data.reset();
        bytes = 0;
        offset = 0;
    }
};

/** One simulated thread (a ucontext fiber with a cycle clock). */
class SimThread
{
  public:
    using Func = std::function<void()>;

    enum class State : std::uint8_t
    {
        Ready,
        Running,
        Blocked,
        Finished,
    };

    SimThread(ThreadId tid, std::string name, Func fn, bool daemon,
              std::size_t stack_bytes);

    ThreadId tid() const { return _tid; }
    const std::string &name() const { return _name; }
    bool daemon() const { return _daemon; }
    State state() const { return _state; }
    Cycles clock() const { return _clock; }

  private:
    friend class SimScheduler;

    ThreadId _tid;
    std::string _name;
    Func _fn;
    bool _daemon;
    State _state = State::Ready;
    Cycles _clock = 0;
    Cycles _deadline = 0;
    /// A wake() arrived while we were still running (e.g. a condvar
    /// signal between releasing the mutex and blocking); consume it
    /// in block() instead of sleeping.
    bool _wakePending = false;
    Cycles _wakeClock = 0;
    std::unique_ptr<std::uint8_t[]> _stack;
    std::size_t _stackBytes;
    FiberContext _ctx;
};

/** Min-clock-first cooperative scheduler over SimThreads. */
class SimScheduler
{
  public:
    /** @param quantum cycles a thread may run past the runner-up. */
    explicit SimScheduler(Cycles quantum = 200);

    /**
     * Create a simulated thread.
     *
     * May be called before run() or from inside a running thread
     * (pthread_create). The new thread's clock starts at the
     * creator's clock (or 0 from outside).
     *
     * @param daemon daemon threads do not keep the simulation alive;
     *               they are abandoned when all others finish.
     */
    ThreadId spawn(std::string name, SimThread::Func fn,
                   bool daemon = false);

    /**
     * Run until completion, deadlock, or @p max_cycles of simulated
     * time. Must be called from outside any simulated thread.
     */
    RunOutcome run(Cycles max_cycles = ~Cycles{0});

    /** The currently executing simulated thread; null outside run. */
    SimThread *current() { return _current; }

    /** Clock of the current thread (call only from inside a thread). */
    Cycles
    now() const
    {
        TMI_ASSERT(_current);
        return _current->_clock;
    }

    /** Largest clock any thread has reached (global time bound). */
    Cycles maxClock() const { return _maxClock; }

    /**
     * Install a host-side cancellation token. When @p flag becomes
     * true (set by another host thread, e.g. the sweep driver's
     * timeout watchdog), run() stops at the next fiber switch and
     * returns RunOutcome::Timeout. Pass nullptr to clear.
     */
    void setAbortFlag(const std::atomic<bool> *flag) { _abort = flag; }

    /**
     * Charge @p cycles to the current thread and yield if its
     * quantum expired. This is the only way simulated time advances.
     */
    void advance(Cycles cycles);

    /** Voluntarily return to the scheduler (stay runnable). */
    void yield();

    /** Block the current thread until another thread wakes it. */
    void block();

    /**
     * Make @p tid runnable again, no earlier than simulated time
     * @p at_least (the waker's clock, so causality is preserved).
     */
    void wake(ThreadId tid, Cycles at_least);

    /** Sleep the current thread until simulated time @p t. */
    void sleepUntil(Cycles t);

    /**
     * Add @p cycles to @p tid's clock without running it -- used to
     * charge stopped threads for work done *to* them (e.g. the
     * ptrace stop during thread-to-process conversion).
     */
    void penalize(ThreadId tid, Cycles cycles);

    /** @name Fiber checkpoint / rollback (transactional aborts)
     *  The scheduler performs the stack copies itself, on the host
     *  stack, while the fiber is suspended -- a thread can therefore
     *  snapshot or rewind its *own* stack safely. None of these
     *  advance simulated time; callers charge costs explicitly. */
    /// @{
    /**
     * Capture the current thread's continuation into @p ck and
     * return. Call only from inside a simulated thread.
     */
    void checkpointCurrent(FiberCheckpoint &ck);

    /**
     * Rewind the current thread to @p ck. Control resumes at the
     * checkpointCurrent() capture point (with `ck.resumes` bumped),
     * never at this call site.
     */
    [[noreturn]] void restoreCurrent(FiberCheckpoint &ck);

    /**
     * Rewind suspended thread @p tid to @p ck (a remote abort). The
     * victim must not be the current thread (use restoreCurrent) or
     * Finished; when next scheduled it resumes at its capture point.
     */
    void hijackThread(ThreadId tid, FiberCheckpoint &ck);
    /// @}

    /** Thread accessor (valid for any spawned tid). */
    SimThread &thread(ThreadId tid);

    /** Number of threads ever spawned. */
    std::size_t threadCount() const { return _threads.size(); }

    /** Count of live (not finished) non-daemon threads. */
    std::size_t liveNonDaemonThreads() const;

    /** Total context switches performed (diagnostic). */
    std::uint64_t contextSwitches() const
    {
        return static_cast<std::uint64_t>(_statSwitches.value());
    }

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    /** What a suspended thread asked the run loop to do before being
     *  resumed (fiber services run on the host stack, where copying
     *  the requester's own stack is safe). */
    enum class FiberService : std::uint8_t
    {
        None,
        Checkpoint, //!< capture into _serviceCk, switch straight back
        Restore,    //!< rewind to _serviceCk, resume at its capture
    };

    static void trampoline(void *arg);
    void finishCurrent();
    void switchToScheduler();
    SimThread *pickNext(Cycles &runner_up) const;
    void captureCheckpoint(SimThread &t, FiberCheckpoint &ck);
    void applyCheckpoint(SimThread &t, FiberCheckpoint &ck);

    Cycles _quantum;
    std::vector<std::unique_ptr<SimThread>> _threads;
    SimThread *_current = nullptr;
    FiberContext _schedCtx;
    bool _running = false;
    /** Cached liveNonDaemonThreads(): the run loop consults it every
     *  switch, and the O(threads) scan showed up in host profiles. */
    std::size_t _liveNonDaemon = 0;
    Cycles _maxClock = 0;
    const std::atomic<bool> *_abort = nullptr;
    FiberService _service = FiberService::None;
    FiberCheckpoint *_serviceCk = nullptr;

    stats::Scalar _statSwitches;
    stats::Scalar _statSpawns;
    stats::Scalar _statCheckpoints;
    stats::Scalar _statRestores;
};

} // namespace tmi

#endif // TMI_SCHED_SCHEDULER_HH
