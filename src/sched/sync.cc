#include "sync.hh"

namespace tmi
{

SyncManager::MutexState &
SyncManager::mutexRef(std::uint64_t id)
{
    auto it = _mutexes.find(id);
    TMI_ASSERT(it != _mutexes.end(), "use of uninitialized mutex");
    return it->second;
}

SyncManager::BarrierState &
SyncManager::barrierRef(std::uint64_t id)
{
    auto it = _barriers.find(id);
    TMI_ASSERT(it != _barriers.end(), "use of uninitialized barrier");
    return it->second;
}

SyncManager::CondState &
SyncManager::condRef(std::uint64_t id)
{
    auto it = _conds.find(id);
    TMI_ASSERT(it != _conds.end(), "use of uninitialized condvar");
    return it->second;
}

void
SyncManager::mutexInit(std::uint64_t id)
{
    _mutexes[id] = MutexState{};
}

bool
SyncManager::mutexExists(std::uint64_t id) const
{
    return _mutexes.count(id) != 0;
}

void
SyncManager::mutexLock(std::uint64_t id)
{
    MutexState &m = mutexRef(id);
    _sched.advance(_costs.mutexUncontended);
    ++_statAcquires;
    if (!m.locked) {
        m.locked = true;
        m.owner = _sched.current()->tid();
        return;
    }
    ++_statContended;
    m.waiters.push_back(_sched.current()->tid());
    _sched.block();
    // Woken by unlock with ownership already transferred to us.
    TMI_ASSERT(m.locked && m.owner == _sched.current()->tid());
}

bool
SyncManager::mutexTryLock(std::uint64_t id)
{
    MutexState &m = mutexRef(id);
    _sched.advance(_costs.mutexUncontended);
    if (m.locked)
        return false;
    ++_statAcquires;
    m.locked = true;
    m.owner = _sched.current()->tid();
    return true;
}

void
SyncManager::mutexUnlock(std::uint64_t id)
{
    MutexState &m = mutexRef(id);
    TMI_ASSERT(m.locked && m.owner == _sched.current()->tid(),
               "unlock by non-owner");
    _sched.advance(_costs.mutexUncontended);
    if (m.waiters.empty()) {
        m.locked = false;
        return;
    }
    ThreadId next = m.waiters.front();
    m.waiters.pop_front();
    m.owner = next;
    _sched.wake(next, _sched.now() + _costs.mutexHandoff);
}

bool
SyncManager::mutexHeld(std::uint64_t id) const
{
    auto it = _mutexes.find(id);
    return it != _mutexes.end() && it->second.locked;
}

void
SyncManager::barrierInit(std::uint64_t id, unsigned parties)
{
    TMI_ASSERT(parties > 0);
    BarrierState b;
    b.parties = parties;
    _barriers[id] = b;
}

void
SyncManager::barrierWait(std::uint64_t id)
{
    BarrierState &b = barrierRef(id);
    _sched.advance(_costs.barrier);
    ++_statBarrierWaits;
    Cycles now = _sched.now();
    if (now > b.maxArrival)
        b.maxArrival = now;
    ++b.arrived;
    if (b.arrived == b.parties) {
        Cycles release = b.maxArrival;
        for (ThreadId tid : b.waiting)
            _sched.wake(tid, release);
        b.waiting.clear();
        b.arrived = 0;
        b.maxArrival = 0;
        if (release > now)
            _sched.advance(release - now);
        return;
    }
    b.waiting.push_back(_sched.current()->tid());
    _sched.block();
}

void
SyncManager::condInit(std::uint64_t id)
{
    _conds[id] = CondState{};
}

void
SyncManager::condWait(std::uint64_t id, std::uint64_t mutex_id)
{
    CondState &c = condRef(id);
    ++_statCondWaits;
    c.waiters.push_back(_sched.current()->tid());
    mutexUnlock(mutex_id);
    _sched.block();
    mutexLock(mutex_id);
}

void
SyncManager::condSignal(std::uint64_t id)
{
    CondState &c = condRef(id);
    _sched.advance(_costs.condSignal);
    if (c.waiters.empty())
        return;
    ThreadId next = c.waiters.front();
    c.waiters.pop_front();
    _sched.wake(next, _sched.now());
}

void
SyncManager::condBroadcast(std::uint64_t id)
{
    CondState &c = condRef(id);
    _sched.advance(_costs.condSignal);
    Cycles now = _sched.now();
    for (ThreadId tid : c.waiters)
        _sched.wake(tid, now);
    c.waiters.clear();
}

void
SyncManager::regStats(stats::StatGroup &group)
{
    group.addScalar("lockAcquires", &_statAcquires,
                    "mutex acquisitions");
    group.addScalar("lockContended", &_statContended,
                    "acquisitions that blocked");
    group.addScalar("barrierWaits", &_statBarrierWaits,
                    "barrier arrivals");
    group.addScalar("condWaits", &_statCondWaits,
                    "condition-variable waits");
}

} // namespace tmi
