/**
 * @file
 * Minimal stackful-fiber context switching.
 *
 * glibc's swapcontext performs a rt_sigprocmask syscall on every
 * switch to save the signal mask. The simulator switches fibers every
 * few simulated accesses (the scheduler quantum is tens of cycles),
 * so that syscall dominated host time. Simulated threads never touch
 * signal masks, so on x86-64 ELF targets we switch with a handful of
 * instructions instead: save the callee-saved registers and the FP
 * control state, swap stack pointers, restore, return. Other targets
 * fall back to ucontext.
 *
 * The choice of mechanism cannot affect simulated results: it changes
 * how a switch is performed, never when one happens.
 */

#ifndef TMI_SCHED_FIBER_HH
#define TMI_SCHED_FIBER_HH

#include <cstddef>

#if defined(__x86_64__) && defined(__ELF__) && !defined(TMI_FORCE_UCONTEXT)
#define TMI_FAST_FIBERS 1
#else
#define TMI_FAST_FIBERS 0
#include <ucontext.h>
#endif

namespace tmi
{

/** One suspended fiber: everything needed to resume it. */
struct FiberContext
{
#if TMI_FAST_FIBERS
    /** Stack pointer below the saved register frame. */
    void *sp = nullptr;
#else
    ucontext_t ctx{};
#endif
};

/** Fiber entry point. Must never return. */
using FiberEntry = void (*)(void *arg);

/**
 * Prepare @p ctx so the first switch into it runs entry(arg) on the
 * given stack.
 */
void fiberInit(FiberContext &ctx, void *stack_base,
               std::size_t stack_bytes, FiberEntry entry, void *arg);

/** Suspend the current fiber into @p from and resume @p to. */
void fiberSwitch(FiberContext &from, FiberContext &to);

} // namespace tmi

#endif // TMI_SCHED_FIBER_HH
