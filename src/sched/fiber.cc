#include "fiber.hh"

#include <cstdint>

namespace tmi
{

#if TMI_FAST_FIBERS

// The saved frame, from the stack pointer upward:
//
//   [mxcsr:4][x87cw:2][pad:2]  <- ctx.sp points here
//   [r15][r14][r13][r12][rbx][rbp]
//   [return address]
//
// tmi_fiber_switch pushes this frame on the suspending fiber's stack
// and pops it from the resuming fiber's. System V x86-64 makes
// exactly rbx, rbp, r12-r15, mxcsr and the x87 control word
// callee-saved; everything else is dead across the call by contract.
asm(R"(
    .text
    .align 16
    .globl tmi_fiber_switch
    .type tmi_fiber_switch, @function
tmi_fiber_switch:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    leaq -8(%rsp), %rsp
    stmxcsr (%rsp)
    fnstcw 4(%rsp)
    movq %rsp, (%rdi)
    movq (%rsi), %rsp
    ldmxcsr (%rsp)
    fldcw 4(%rsp)
    leaq 8(%rsp), %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    ret
    .size tmi_fiber_switch, . - tmi_fiber_switch

    .align 16
    .globl tmi_fiber_boot
    .type tmi_fiber_boot, @function
tmi_fiber_boot:
    movq %r12, %rdi
    callq *%r13
    ud2
    .size tmi_fiber_boot, . - tmi_fiber_boot
)");

extern "C" void tmi_fiber_switch(FiberContext *from, FiberContext *to);
extern "C" void tmi_fiber_boot();

void
fiberInit(FiberContext &ctx, void *stack_base, std::size_t stack_bytes,
          FiberEntry entry, void *arg)
{
    auto base = reinterpret_cast<std::uintptr_t>(stack_base);
    // Align the logical stack top so rsp is 16-byte aligned when
    // tmi_fiber_boot gains control (its call then leaves rsp % 16 ==
    // 8 at the entry function, as the ABI requires).
    std::uintptr_t top = (base + stack_bytes) & ~std::uintptr_t{15};
    auto *frame = reinterpret_cast<std::uint64_t *>(top) - 8;

    auto *fp = reinterpret_cast<std::uint8_t *>(frame);
    asm("stmxcsr %0" : "=m"(*reinterpret_cast<std::uint32_t *>(fp)));
    asm("fnstcw %0" : "=m"(*reinterpret_cast<std::uint16_t *>(fp + 4)));
    frame[1] = 0;                                         // r15
    frame[2] = 0;                                         // r14
    frame[3] = reinterpret_cast<std::uint64_t>(entry);    // r13
    frame[4] = reinterpret_cast<std::uint64_t>(arg);      // r12
    frame[5] = 0;                                         // rbx
    frame[6] = 0;                                         // rbp
    frame[7] = reinterpret_cast<std::uint64_t>(&tmi_fiber_boot);
    ctx.sp = frame;
}

void
fiberSwitch(FiberContext &from, FiberContext &to)
{
    tmi_fiber_switch(&from, &to);
}

#else // !TMI_FAST_FIBERS

namespace
{

/// makecontext passes ints, so a 64-bit pointer rides in two halves.
void
ucontextBoot(unsigned hi, unsigned lo)
{
    auto ptr = (static_cast<std::uintptr_t>(hi) << 32) |
               static_cast<std::uintptr_t>(lo);
    auto *boot = reinterpret_cast<void (**)(void *)>(ptr);
    // The entry/arg pair lives at the bottom of the fiber's stack.
    boot[0](reinterpret_cast<void *>(boot[1]));
}

} // namespace

void
fiberInit(FiberContext &ctx, void *stack_base, std::size_t stack_bytes,
          FiberEntry entry, void *arg)
{
    // Stash entry/arg at the low end of the stack, out of the way of
    // the growing stack above.
    auto *slots = static_cast<void **>(stack_base);
    slots[0] = reinterpret_cast<void *>(entry);
    slots[1] = arg;

    getcontext(&ctx.ctx);
    ctx.ctx.uc_stack.ss_sp =
        static_cast<std::uint8_t *>(stack_base) + 2 * sizeof(void *);
    ctx.ctx.uc_stack.ss_size = stack_bytes - 2 * sizeof(void *);
    ctx.ctx.uc_link = nullptr;
    auto ptr = reinterpret_cast<std::uintptr_t>(slots);
    makecontext(&ctx.ctx, reinterpret_cast<void (*)()>(&ucontextBoot),
                2, static_cast<unsigned>(ptr >> 32),
                static_cast<unsigned>(ptr & 0xffffffffu));
}

void
fiberSwitch(FiberContext &from, FiberContext &to)
{
    swapcontext(&from.ctx, &to.ctx);
}

#endif // TMI_FAST_FIBERS

} // namespace tmi
