/**
 * @file
 * The simulated application "binary": a static instruction table.
 *
 * Real Tmi disassembles the application binary at detector startup to
 * learn, for each instruction address, whether it is a load or a
 * store and how wide the access is (paper section 3.1); PEBS records
 * carry only a PC. Workloads in this reproduction register their
 * memory instructions here, and the detector performs the same
 * PC -> (kind, width) resolution a disassembler would.
 */

#ifndef TMI_ISA_INSTRUCTIONS_HH
#define TMI_ISA_INSTRUCTIONS_HH

#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/regions.hh"

namespace tmi
{

/** Whether an instruction reads or writes memory. */
enum class MemKind : std::uint8_t
{
    Load,
    Store,
};

/** Static information about one memory instruction. */
struct InstrInfo
{
    std::string name;   //!< diagnostic label, e.g. "histogram.inc"
    MemKind kind = MemKind::Load;
    unsigned width = 1; //!< access size in bytes
};

/** Registry of the program's static memory instructions. */
class InstructionTable
{
  public:
    /** PCs start away from zero so they look like text addresses. */
    static constexpr Addr textBase = 0x400000;

    /**
     * Register a memory instruction; returns its PC.
     *
     * @param name  diagnostic label.
     * @param kind  load or store.
     * @param width access width in bytes (1..8).
     */
    Addr
    define(std::string name, MemKind kind, unsigned width)
    {
        TMI_ASSERT(width >= 1 && width <= 8);
        _instrs.push_back({std::move(name), kind, width});
        return textBase + (_instrs.size() - 1) * 4;
    }

    /** True if @p pc names a registered instruction. */
    bool
    contains(Addr pc) const
    {
        return pc >= textBase && (pc - textBase) % 4 == 0 &&
               (pc - textBase) / 4 < _instrs.size();
    }

    /** Disassemble @p pc; panics if unknown (detector filters first). */
    const InstrInfo &
    lookup(Addr pc) const
    {
        TMI_ASSERT(contains(pc), "disassembly of unknown PC");
        return _instrs[(pc - textBase) / 4];
    }

    /** Number of registered static instructions. */
    std::size_t size() const { return _instrs.size(); }

    /**
     * Approximate detector-side memory cost of holding disassembly
     * metadata for this binary (Figure 8 accounting).
     */
    std::uint64_t
    metadataBytes() const
    {
        return _instrs.size() * 48;
    }

  private:
    std::vector<InstrInfo> _instrs;
};

} // namespace tmi

#endif // TMI_ISA_INSTRUCTIONS_HH
