/**
 * @file
 * Code-region kinds and memory orders for code-centric consistency.
 *
 * The paper partitions static code into regular, atomic, and assembly
 * regions (Table 2). Region transitions are announced by compiler-
 * inserted callbacks; in this reproduction workloads call the region
 * markers on their ThreadApi, which models the LLVM instrumentation
 * pass of section 3.4.2.
 */

#ifndef TMI_ISA_REGIONS_HH
#define TMI_ISA_REGIONS_HH

#include <cstdint>

namespace tmi
{

/** The language/consistency domain a piece of code executes under. */
enum class RegionKind : std::uint8_t
{
    Regular, //!< plain C/C++ code: data races are undefined behaviour
    Atomic,  //!< C/C++ atomic operations: atomicity guaranteed
    Asm,     //!< (inline) assembly: full hardware TSO semantics
};

/** Memory orders that matter to the PTSB policy. */
enum class MemOrder : std::uint8_t
{
    Relaxed, //!< atomicity only; no ordering -- needs no PTSB flush
    SeqCst,  //!< any ordering-bearing order (acq/rel/seq_cst)
};

/** Human-readable region name (diagnostics). */
constexpr const char *
regionName(RegionKind kind)
{
    switch (kind) {
      case RegionKind::Regular:
        return "regular";
      case RegionKind::Atomic:
        return "atomic";
      case RegionKind::Asm:
        return "asm";
    }
    return "?";
}

} // namespace tmi

#endif // TMI_ISA_REGIONS_HH
