#include "lockless.hh"

#include <algorithm>

#include "fault/fault_injector.hh"
#include "obs/trace.hh"

namespace tmi
{

LocklessAllocator::LocklessAllocator(MemoryProvider &provider,
                                     const LocklessConfig &config)
    : _provider(provider), _config(config)
{
}

unsigned
LocklessAllocator::classFor(std::uint64_t bytes)
{
    std::uint64_t size = std::uint64_t{1} << minClassShift;
    unsigned cls = 0;
    while (size < bytes) {
        size <<= 1;
        ++cls;
    }
    return cls;
}

Addr
LocklessAllocator::malloc(ThreadId tid, std::uint64_t bytes)
{
    if (bytes == 0)
        bytes = 1;
    _stats.onMalloc(bytes);

    if (bytes > classBytes(numClasses - 1)) {
        // Large path: straight from sbrk, page granular.
        _provider.chargeCycles(tid, _config.fastPathCost * 2);
        std::uint64_t need = bytes + lineBytes;
        Addr base = _provider.sbrk(need);
        Addr addr = base;
        if (_config.alignLarge)
            addr = roundUp(addr, lineBytes);
        if (_config.forceMisalign)
            addr += 8;
        _largeSizes[addr] = bytes;
        return addr;
    }

    unsigned cls = classFor(std::max(bytes, _config.minSmallBytes));
    ThreadCache &tc = cache(tid);
    auto &list = tc.freeLists[cls];
    if (list.empty()) {
        if (_faults &&
            _faults->shouldFail(faultpoint::allocSizeClassExhausted)) {
            // The slab carve failed (arena exhaustion): serve the
            // request from the large path instead. The allocation
            // succeeds but the per-thread layout guarantee is lost
            // for this object.
            if (_trace) {
                _trace->recordHere(obs::EventKind::AllocFallback,
                                   bytes, 0, "size-class->large");
            }
            _provider.chargeCycles(tid, _config.fastPathCost * 2);
            Addr base = _provider.sbrk(bytes + lineBytes);
            Addr addr =
                _config.alignLarge ? roundUp(base, lineBytes) : base;
            _largeSizes[addr] = bytes;
            return addr;
        }
        // Refill: carve a fresh slab for this thread only. This is
        // the layout property that keeps different threads' small
        // objects off each other's cache lines.
        _provider.chargeCycles(tid, _config.slabRefillCost);
        std::uint64_t obj = classBytes(cls);
        Addr slab = _provider.sbrk(_config.slabBytes);
        slab = roundUp(slab, lineBytes);
        std::uint64_t count = (_config.slabBytes - lineBytes) / obj;
        for (std::uint64_t i = count; i-- > 0;)
            list.push_back(slab + i * obj);
    }
    _provider.chargeCycles(tid, _config.fastPathCost);
    Addr addr = list.back();
    list.pop_back();
    _objClass[addr] = SmallObj{cls, bytes};
    return addr;
}

void
LocklessAllocator::free(ThreadId tid, Addr addr)
{
    if (addr == 0)
        return;
    _provider.chargeCycles(tid, _config.fastPathCost);

    auto large = _largeSizes.find(addr);
    if (large != _largeSizes.end()) {
        _stats.onFree(large->second);
        _largeSizes.erase(large);
        return; // large chunks are not recycled (sbrk never shrinks)
    }
    auto it = _objClass.find(addr);
    TMI_ASSERT(it != _objClass.end(), "free of unknown address");
    unsigned cls = it->second.cls;
    std::uint64_t requested = it->second.requested;
    _stats.onFree(requested);
    _objClass.erase(it);
    if (_faults &&
        _faults->shouldFail(faultpoint::allocMetadataCorrupt)) {
        // The object header is unreadable: recycling the address
        // into a free list could poison the size class, so the safe
        // response is to leak the object.
        ++_leakedObjects;
        if (_trace) {
            _trace->recordHere(obs::EventKind::AllocFallback,
                               requested, 1, "leak-on-corrupt");
        }
        return;
    }
    cache(tid).freeLists[cls].push_back(addr);
}

Addr
LocklessAllocator::memalign(ThreadId tid, Addr alignment,
                            std::uint64_t bytes)
{
    TMI_ASSERT(isPowerOf2(alignment));
    _stats.onMalloc(bytes);
    _provider.chargeCycles(tid, _config.fastPathCost * 2);
    Addr base = _provider.sbrk(bytes + alignment);
    Addr addr = roundUp(base, alignment);
    _largeSizes[addr] = bytes;
    return addr;
}

} // namespace tmi
