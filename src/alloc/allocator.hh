/**
 * @file
 * Allocator interface for simulated application memory.
 *
 * Allocators hand out simulated virtual addresses inside the heap
 * region. Their *layout policy* is what matters for false sharing:
 * whether two threads' hot data can land on one cache line, and
 * whether large allocations are cache-line aligned. Their *speed* is
 * modeled by charging cycles per operation through the
 * MemoryProvider (the paper's Lockless-vs-glibc gap is 16%).
 */

#ifndef TMI_ALLOC_ALLOCATOR_HH
#define TMI_ALLOC_ALLOCATOR_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace tmi
{

class FaultInjector;

namespace obs
{
class TraceRecorder;
} // namespace obs

/** Services allocators need from the machine. */
class MemoryProvider
{
  public:
    virtual ~MemoryProvider() = default;

    /**
     * Extend the heap by @p bytes (rounded up to a page) and return
     * the virtual address of the new contiguous chunk.
     */
    virtual Addr sbrk(std::uint64_t bytes) = 0;

    /** Charge allocator bookkeeping cycles to @p tid. */
    virtual void chargeCycles(ThreadId tid, Cycles cycles) = 0;
};

/** Allocation statistics shared by all allocator implementations. */
struct AllocStats
{
    stats::Scalar mallocs;
    stats::Scalar frees;
    stats::Scalar bytesRequested;
    std::uint64_t bytesLive = 0;
    std::uint64_t bytesPeak = 0;

    void
    onMalloc(std::uint64_t bytes)
    {
        ++mallocs;
        bytesRequested += static_cast<double>(bytes);
        bytesLive += bytes;
        if (bytesLive > bytesPeak)
            bytesPeak = bytesLive;
    }

    void
    onFree(std::uint64_t bytes)
    {
        ++frees;
        bytesLive -= bytes;
    }

    void
    regStats(stats::StatGroup &group)
    {
        group.addScalar("mallocs", &mallocs, "allocation calls");
        group.addScalar("frees", &frees, "free calls");
        group.addScalar("bytesRequested", &bytesRequested,
                        "total bytes requested");
    }
};

/** Abstract simulated-memory allocator. */
class Allocator
{
  public:
    virtual ~Allocator() = default;

    /** Allocate @p bytes for @p tid; returns a simulated address. */
    virtual Addr malloc(ThreadId tid, std::uint64_t bytes) = 0;

    /** Release an allocation made by malloc. */
    virtual void free(ThreadId tid, Addr addr) = 0;

    /**
     * Allocate with explicit alignment (posix_memalign); used by
     * manual fixes that pad and align hot structures.
     */
    virtual Addr memalign(ThreadId tid, Addr alignment,
                          std::uint64_t bytes) = 0;

    /** Name for reports. */
    virtual const char *name() const = 0;

    /** Shared statistics. */
    const AllocStats &allocStats() const { return _stats; }
    AllocStats &allocStats() { return _stats; }

    /** Wire the fault injector: arms the alloc.* points (metadata
     *  corruption at free, size-class exhaustion at refill). */
    void setFaultInjector(FaultInjector *faults) { _faults = faults; }

    /** Wire the trace recorder: degraded-path allocations emit
     *  AllocFallback events (null disables). */
    void setTrace(obs::TraceRecorder *trace) { _trace = trace; }

    /** Objects leaked because their metadata was corrupted. */
    std::uint64_t leakedObjects() const { return _leakedObjects; }

  protected:
    AllocStats _stats;
    FaultInjector *_faults = nullptr;
    obs::TraceRecorder *_trace = nullptr;
    std::uint64_t _leakedObjects = 0;
};

} // namespace tmi

#endif // TMI_ALLOC_ALLOCATOR_HH
