/**
 * @file
 * A glibc-malloc-like allocator used as the slower baseline.
 *
 * One global arena with a single bump pointer and per-size free
 * lists. Consecutive small allocations from different threads pack
 * next to each other, so per-thread objects routinely share cache
 * lines -- the classic allocator-induced false sharing (e.g. lu-ncb,
 * spinlockpool). A global-lock cost makes it about 16% slower than
 * the lockless allocator on allocation-heavy workloads, matching the
 * gap the paper reports.
 */

#ifndef TMI_ALLOC_GLIBC_LIKE_HH
#define TMI_ALLOC_GLIBC_LIKE_HH

#include <unordered_map>
#include <vector>

#include "alloc/allocator.hh"
#include "common/logging.hh"

namespace tmi
{

/** Cost policy of the glibc-like allocator. */
struct GlibcLikeConfig
{
    Cycles baseCost = 110;       //!< per-op cost with the arena lock
    Cycles contentionCost = 350; //!< arena-lock transfer between threads
    std::uint64_t chunkBytes = 256 * 1024; //!< arena extension unit
};

/** Globally shared bump/free-list allocator. */
class GlibcLikeAllocator : public Allocator
{
  public:
    GlibcLikeAllocator(MemoryProvider &provider,
                       const GlibcLikeConfig &config = {});

    Addr malloc(ThreadId tid, std::uint64_t bytes) override;
    void free(ThreadId tid, Addr addr) override;
    Addr memalign(ThreadId tid, Addr alignment,
                  std::uint64_t bytes) override;
    const char *name() const override { return "glibc-like"; }

  private:
    std::uint64_t roundSize(std::uint64_t bytes) const
    {
        // 16-byte granules with an 8-byte "header" skew: successive
        // allocations are NOT cache-line aligned, like glibc.
        return roundUp(bytes + 8, 16);
    }

    MemoryProvider &_provider;
    GlibcLikeConfig _config;
    Addr _bump = 0;
    Addr _bumpEnd = 0;
    ThreadId _lastTid = ~ThreadId{0};
    std::unordered_map<std::uint64_t, std::vector<Addr>> _freeLists;
    std::unordered_map<Addr, std::uint64_t> _sizes;
};

} // namespace tmi

#endif // TMI_ALLOC_GLIBC_LIKE_HH
