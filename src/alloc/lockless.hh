/**
 * @file
 * A Lockless-Allocator-style size-class allocator (paper section 4.1).
 *
 * Small requests are served from per-thread slabs carved into
 * power-of-two size classes, so different threads' small objects
 * rarely share a cache line. Large requests go straight to sbrk.
 *
 * Two knobs reproduce the paper's experimental setup:
 *  - forceMisalign: offsets large allocations by 8 bytes, recreating
 *    the mis-aligned allocations the paper forces to expose each
 *    benchmark's known false sharing (section 4.3);
 *  - alignLarge: cache-line-aligns large allocations, which is how
 *    switching to Tmi's allocator "automatically repairs" lu-ncb.
 */

#ifndef TMI_ALLOC_LOCKLESS_HH
#define TMI_ALLOC_LOCKLESS_HH

#include <unordered_map>
#include <vector>

#include "alloc/allocator.hh"
#include "common/logging.hh"

namespace tmi
{

/** Layout/cost policy of the lockless allocator. */
struct LocklessConfig
{
    bool forceMisalign = false; //!< +8B skew on large allocations
    bool alignLarge = true;     //!< 64 B alignment for large allocs
    /**
     * Minimum effective size of a small request. Tmi's modified
     * Lockless allocator uses 64 so distinct small objects never
     * share a cache line -- this is what "automatically repairs"
     * lu-ncb without any PTSB (section 4.3).
     */
    std::uint64_t minSmallBytes = 16;
    Cycles fastPathCost = 55;   //!< per-op cost (per-thread cache hit)
    Cycles slabRefillCost = 600; //!< carving a new slab
    std::uint64_t slabBytes = 64 * 1024;
};

/** Per-thread size-class allocator over simulated memory. */
class LocklessAllocator : public Allocator
{
  public:
    LocklessAllocator(MemoryProvider &provider,
                      const LocklessConfig &config = {});

    Addr malloc(ThreadId tid, std::uint64_t bytes) override;
    void free(ThreadId tid, Addr addr) override;
    Addr memalign(ThreadId tid, Addr alignment,
                  std::uint64_t bytes) override;
    const char *name() const override { return "lockless"; }

  private:
    static constexpr unsigned minClassShift = 4;  //!< 16 B
    static constexpr unsigned maxClassShift = 13; //!< 8 KB
    static constexpr unsigned numClasses =
        maxClassShift - minClassShift + 1;

    static unsigned classFor(std::uint64_t bytes);
    static std::uint64_t classBytes(unsigned cls)
    {
        return std::uint64_t{1} << (cls + minClassShift);
    }

    struct ThreadCache
    {
        std::vector<Addr> freeLists[numClasses];
    };

    ThreadCache &cache(ThreadId tid) { return _caches[tid]; }

    struct SmallObj
    {
        unsigned cls;
        std::uint64_t requested;
    };

    MemoryProvider &_provider;
    LocklessConfig _config;
    std::unordered_map<ThreadId, ThreadCache> _caches;
    std::unordered_map<Addr, std::uint64_t> _largeSizes;
    std::unordered_map<Addr, SmallObj> _objClass;
};

} // namespace tmi

#endif // TMI_ALLOC_LOCKLESS_HH
