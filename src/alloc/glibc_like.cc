#include "glibc_like.hh"

#include "fault/fault_injector.hh"
#include "obs/trace.hh"

namespace tmi
{

GlibcLikeAllocator::GlibcLikeAllocator(MemoryProvider &provider,
                                       const GlibcLikeConfig &config)
    : _provider(provider), _config(config)
{
}

Addr
GlibcLikeAllocator::malloc(ThreadId tid, std::uint64_t bytes)
{
    if (bytes == 0)
        bytes = 1;
    _stats.onMalloc(bytes);

    Cycles cost = _config.baseCost;
    if (_lastTid != tid && _lastTid != ~ThreadId{0})
        cost += _config.contentionCost; // arena-lock ping-pong
    _lastTid = tid;
    _provider.chargeCycles(tid, cost);

    std::uint64_t size = roundSize(bytes);
    auto &list = _freeLists[size];
    if (!list.empty()) {
        Addr addr = list.back();
        list.pop_back();
        _sizes[addr] = bytes;
        return addr;
    }
    if (_bump + size > _bumpEnd) {
        std::uint64_t chunk =
            std::max<std::uint64_t>(_config.chunkBytes, size);
        _bump = _provider.sbrk(chunk);
        _bumpEnd = _bump + chunk;
    }
    // Header skew: the usable address starts 8 bytes in, so large
    // arrays are mis-aligned with respect to cache lines by default.
    Addr addr = _bump + 8;
    _bump += size;
    _sizes[addr] = bytes;
    return addr;
}

void
GlibcLikeAllocator::free(ThreadId tid, Addr addr)
{
    if (addr == 0)
        return;
    Cycles cost = _config.baseCost;
    if (_lastTid != tid && _lastTid != ~ThreadId{0})
        cost += _config.contentionCost;
    _lastTid = tid;
    _provider.chargeCycles(tid, cost);

    auto it = _sizes.find(addr);
    TMI_ASSERT(it != _sizes.end(), "free of unknown address");
    std::uint64_t bytes = it->second;
    _stats.onFree(bytes);
    _sizes.erase(it);
    if (_faults &&
        _faults->shouldFail(faultpoint::allocMetadataCorrupt)) {
        // Chunk header corrupted: leak rather than recycle a chunk
        // whose bin size can no longer be trusted.
        ++_leakedObjects;
        if (_trace) {
            _trace->recordHere(obs::EventKind::AllocFallback, bytes,
                               1, "leak-on-corrupt");
        }
        return;
    }
    _freeLists[roundSize(bytes)].push_back(addr);
}

Addr
GlibcLikeAllocator::memalign(ThreadId tid, Addr alignment,
                             std::uint64_t bytes)
{
    TMI_ASSERT(isPowerOf2(alignment));
    _stats.onMalloc(bytes);
    _provider.chargeCycles(tid, _config.baseCost * 2);
    Addr base = _provider.sbrk(bytes + alignment);
    Addr addr = roundUp(base, alignment);
    _sizes[addr] = bytes;
    return addr;
}

} // namespace tmi
