/**
 * @file
 * The Tmi runtime (paper section 3).
 *
 * Tmi is compatible-by-default: applications run essentially
 * untouched while a detection thread consumes PEBS HITM records.
 * Only when meaningful false sharing is detected does Tmi stop the
 * application, convert each thread into a process (giving it a
 * private page table), and enable the page twinning store buffer on
 * exactly the pages that exhibit false sharing. Code-centric
 * consistency keeps the PTSB out of atomic and assembly regions so
 * their memory-model guarantees survive.
 *
 * Modes:
 *  - AllocOnly: only the process-shared allocator redirection
 *    (the paper's tmi-alloc bars in Figure 7);
 *  - DetectOnly: adds perf monitoring, the detection thread, and
 *    process-shared sync redirection (tmi-detect);
 *  - DetectAndRepair: full system (tmi-protect).
 *
 * The configured mode is also the top of a *degradation ladder*: the
 * runtime drops one rung at a time (DetectAndRepair -> DetectOnly ->
 * AllocOnly) when its own machinery misbehaves -- T2P conversion
 * failing repeatedly, a repair that costs more than it saves, a
 * PTSB-induced livelock, or persistently unreliable perf sampling.
 * Every rung keeps the application correct; each drop only sheds an
 * optimization. Transitions are logged with warn() and counted.
 */

#ifndef TMI_RUNTIME_TMI_RUNTIME_HH
#define TMI_RUNTIME_TMI_RUNTIME_HH

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "consistency/ccc.hh"
#include "core/machine.hh"
#include "detect/detector.hh"
#include "ptsb/ptsb.hh"
#include "runtime/invariants.hh"
#include "runtime/robustness.hh"

namespace tmi
{

/** Operating mode of the runtime (also a ladder rung, see above). */
enum class TmiMode
{
    AllocOnly,
    DetectOnly,
    DetectAndRepair,
};

/** Human-readable rung name ("alloc-only", ..., for logs and CSVs). */
const char *tmiModeName(TmiMode mode);

/** Tmi runtime configuration. */
struct TmiConfig
{
    TmiMode mode = TmiMode::DetectAndRepair;
    /** Code-centric consistency on/off (off reproduces Fig. 11/12). */
    bool cccEnabled = true;
    /** Ablation: protect the whole heap instead of targeted pages. */
    bool ptsbEverywhere = false;

    DetectorConfig detector;
    PtsbCosts ptsbCosts;
    RobustnessConfig robust;

    /**
     * Simulated cycles between detector analyses. The paper analyzes
     * once per second on minute-long runs; our runs are ~10-100 ms
     * of simulated time, so the cadence is scaled to match
     * (documented in EXPERIMENTS.md).
     */
    Cycles analysisInterval = 2'000'000;

    /** ptrace stop + trampoline + fork, charged per converted thread
     *  (Table 3 reports the total under 200 us). */
    Cycles t2pCostPerThread = 110'000;

    /** Modeled per-thread perf ring size for Figure 8 accounting
     *  (the paper attributes ~90 MB to perf buffers + detector
     *  structures on small apps). */
    std::uint64_t modeledRingBytesPerThread = 16ULL << 20;

    bool operator==(const TmiConfig &) const = default;
};

/** Collect TmiConfig constraint violations under @p prefix. */
void validateConfig(const TmiConfig &config,
                    std::vector<ConfigError> &errors,
                    const std::string &prefix = "TmiConfig");

/** The Tmi runtime: implements every Machine hook. */
class TmiRuntime : public RuntimeHooks
{
  public:
    TmiRuntime(Machine &machine, const TmiConfig &config = {});

    /**
     * Install hooks, wire the COW callbacks, and (except in AllocOnly
     * mode) launch the per-application detection thread. Call before
     * spawning any application thread. Rejects nonsensical configs
     * with fatal().
     */
    void attach();

    /** @name RuntimeHooks */
    /// @{
    void onThreadCreate(ThreadId tid) override;
    void onThreadExit(ThreadId tid) override;
    bool bypassPrivate(ThreadId tid) override;
    bool atomicsBypassPrivate() override;
    void onAtomicOp(ThreadId tid, MemOrder order,
                    bool is_rmw) override;
    void onRegionEnter(ThreadId tid, RegionKind kind) override;
    void onRegionExit(ThreadId tid) override;
    Addr onSyncObjectInit(ThreadId tid, Addr va) override;
    void onSyncAcquire(ThreadId tid) override;
    void onSyncRelease(ThreadId tid) override;
    void onHeapGrow(VPage first, std::uint64_t n) override;
    /// @}

    /** @name Experiment queries */
    /// @{
    /** True while converted threads have pages under the PTSB (an
     *  un-repair turns this back off). */
    bool repairActive() const
    {
        return _converted && !_protectedPages.empty();
    }

    /** Simulated time at which repair engaged (Table 3 Unrepaired). */
    Cycles repairStartCycles() const { return _repairStart; }

    /** Total thread-to-process conversion time (Table 3 T2P). */
    Cycles t2pCycles() const { return _t2pTotal; }

    /** Total PTSB commits across all converted threads. */
    std::uint64_t totalCommits() const;

    /** Racy-merge bytes observed across all PTSBs (should be zero
     *  for data-race-free programs, Lemma 3.1). */
    std::uint64_t totalConflictBytes() const;

    /** Pages currently under targeted protection. */
    std::size_t protectedPageCount() const
    {
        return _protectedPages.size();
    }

    /**
     * Tmi's memory overhead beyond the application's own
     * allocations: perf rings, detector metadata, twins, and the
     * internal process-shared region (Figure 8).
     */
    std::uint64_t overheadBytes() const;

    Detector &detector() { return _detector; }
    CodeCentricConsistency &ccc() { return _ccc; }
    /// @}

    /** @name Robustness queries */
    /// @{
    /** Current degradation-ladder rung (== cfg.mode until a drop). */
    TmiMode rung() const { return _rung; }

    /** Aborted-and-rolled-back T2P transactions. */
    std::uint64_t t2pAborts() const
    {
        return static_cast<std::uint64_t>(_statT2pAborts.value());
    }

    /** Times repair was rolled back (dissolved) after engaging. */
    unsigned unrepairs() const { return _unrepairs; }

    /** Watchdog force-flush events. */
    unsigned watchdogFires() const { return _watchdogFires; }

    /** COW faults degraded to plain shared writes (page lost its
     *  isolation but stayed correct). */
    std::uint64_t cowFallbacks() const
    {
        return static_cast<std::uint64_t>(_statCowFallbacks.value());
    }

    /** Ladder transitions taken. */
    std::uint64_t ladderDrops() const
    {
        return static_cast<std::uint64_t>(_statLadderDrops.value());
    }

    /** Rungs climbed back by the RecoverUp policy. */
    std::uint64_t ladderRecovers() const
    {
        return static_cast<std::uint64_t>(
            _statLadderRecovers.value());
    }

    /** Ladder-transition invariant probe (chaos oracle). */
    const InvariantProbe &invariants() const { return _invariants; }
    /// @}

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    void detectionLoop(ThreadApi &api);

    /**
     * Transactionally convert every running thread. On any per-thread
     * failure (clone fault, thread refusing to stop) the whole batch
     * is rolled back: already-converted threads rejoin their original
     * process and their PTSBs are destroyed, leaving the address-space
     * state exactly as before the attempt.
     *
     * @return true when every thread converted.
     */
    bool tryConvertAllThreads();

    /**
     * Drive tryConvertAllThreads with exponential backoff up to
     * robust.t2pMaxAttempts; exhausting the budget degrades to
     * DetectOnly.
     */
    bool engageRepair();

    /** @return the new pid, or invalidProcessId when the clone
     *  failed (caller decides how to degrade). */
    ProcessId convertThread(ThreadId tid);

    void protectPageEverywhere(VPage vpage);
    void commitThread(ThreadId tid);

    /**
     * Roll repair back: commit and unprotect everything, everywhere.
     * Threads stay processes (their page tables are now all-shared,
     * which is behaviourally identical to unconverted threads), so
     * repair can re-engage later by re-protecting pages.
     *
     * @return cycle cost of the dissolution, to charge the caller.
     */
    Cycles unrepair(const char *reason);

    /** One-way ladder transition with logging (no-op if already at
     *  or below @p mode). */
    void degradeTo(TmiMode mode, const char *reason);

    /** Drop a rung due to persistently lossy perf sampling. */
    void checkPerfHealth(Cycles window);

    /** Un-repair when measured overhead dwarfs the HITM benefit. */
    void updateEffectiveness(Cycles window);

    /** Force-commit PTSBs stuck with old dirty twins (livelock). */
    void runWatchdog(Cycles window);

    /**
     * RecoverUp: after robust.recoverUpWindows consecutive clean
     * windows on a degraded rung, climb one rung back toward the
     * configured mode and reset the failure budgets. Called once per
     * analysis window, after all the health checks have judged it.
     */
    void maybeRecoverUp();

    Machine &_m;
    TmiConfig _cfg;
    InvariantProbe _invariants;
    /** The machine's recorder, or null when tracing is off. */
    obs::TraceRecorder *_trace;
    CodeCentricConsistency _ccc;
    Detector _detector;

    std::unordered_map<ProcessId, std::unique_ptr<Ptsb>> _ptsbs;
    std::unordered_set<VPage> _protectedPages;
    bool _converted = false;
    Cycles _repairStart = 0;
    Cycles _t2pTotal = 0;

    TmiMode _rung;

    // Effectiveness-monitor state.
    double _preRepairHitmRate = 0;  //!< EMA while un-repaired
    std::uint64_t _lastHitm = 0;
    Cycles _windowOverhead = 0;     //!< commits + twin copies
    unsigned _regressStreak = 0;
    unsigned _windowsSinceRepair = 0;
    unsigned _windowsSinceUnrepair = 0;
    unsigned _unrepairs = 0;

    // Perf-health state.
    std::uint64_t _lastLost = 0;
    std::uint64_t _lastEmitted = 0;
    unsigned _lossStreak = 0;

    // Watchdog state.
    struct PtsbWatch
    {
        std::uint64_t lastCommits = 0;
        Cycles stall = 0;
    };
    std::unordered_map<ProcessId, PtsbWatch> _watch;
    unsigned _watchdogFires = 0;

    // RecoverUp state.
    unsigned _cleanWindows = 0; //!< consecutive clean windows
    bool _dirtyWindow = false;  //!< health event hit this window

    stats::Scalar _statConversions;
    stats::Scalar _statPageProtections;
    stats::Scalar _statSyncRedirects;
    stats::Scalar _statFlushCommits;
    stats::Scalar _statT2pAborts;
    stats::Scalar _statUnrepairs;
    stats::Scalar _statWatchdogFlushes;
    stats::Scalar _statLadderDrops;
    stats::Scalar _statLadderRecovers;
    stats::Scalar _statCowFallbacks;
};

} // namespace tmi

#endif // TMI_RUNTIME_TMI_RUNTIME_HH
