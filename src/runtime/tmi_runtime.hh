/**
 * @file
 * The Tmi runtime (paper section 3).
 *
 * Tmi is compatible-by-default: applications run essentially
 * untouched while a detection thread consumes PEBS HITM records.
 * Only when meaningful false sharing is detected does Tmi stop the
 * application, convert each thread into a process (giving it a
 * private page table), and enable the page twinning store buffer on
 * exactly the pages that exhibit false sharing. Code-centric
 * consistency keeps the PTSB out of atomic and assembly regions so
 * their memory-model guarantees survive.
 *
 * Modes:
 *  - AllocOnly: only the process-shared allocator redirection
 *    (the paper's tmi-alloc bars in Figure 7);
 *  - DetectOnly: adds perf monitoring, the detection thread, and
 *    process-shared sync redirection (tmi-detect);
 *  - DetectAndRepair: full system (tmi-protect).
 */

#ifndef TMI_RUNTIME_TMI_RUNTIME_HH
#define TMI_RUNTIME_TMI_RUNTIME_HH

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "consistency/ccc.hh"
#include "core/machine.hh"
#include "detect/detector.hh"
#include "ptsb/ptsb.hh"

namespace tmi
{

/** Operating mode of the runtime. */
enum class TmiMode
{
    AllocOnly,
    DetectOnly,
    DetectAndRepair,
};

/** Tmi runtime configuration. */
struct TmiConfig
{
    TmiMode mode = TmiMode::DetectAndRepair;
    /** Code-centric consistency on/off (off reproduces Fig. 11/12). */
    bool cccEnabled = true;
    /** Ablation: protect the whole heap instead of targeted pages. */
    bool ptsbEverywhere = false;

    DetectorConfig detector;
    PtsbCosts ptsbCosts;

    /**
     * Simulated cycles between detector analyses. The paper analyzes
     * once per second on minute-long runs; our runs are ~10-100 ms
     * of simulated time, so the cadence is scaled to match
     * (documented in EXPERIMENTS.md).
     */
    Cycles analysisInterval = 2'000'000;

    /** ptrace stop + trampoline + fork, charged per converted thread
     *  (Table 3 reports the total under 200 us). */
    Cycles t2pCostPerThread = 110'000;

    /** Modeled per-thread perf ring size for Figure 8 accounting
     *  (the paper attributes ~90 MB to perf buffers + detector
     *  structures on small apps). */
    std::uint64_t modeledRingBytesPerThread = 16ULL << 20;
};

/** The Tmi runtime: implements every Machine hook. */
class TmiRuntime : public RuntimeHooks
{
  public:
    TmiRuntime(Machine &machine, const TmiConfig &config = {});

    /**
     * Install hooks, wire the COW callback, and (except in AllocOnly
     * mode) launch the per-application detection thread. Call before
     * spawning any application thread.
     */
    void attach();

    /** @name RuntimeHooks */
    /// @{
    void onThreadCreate(ThreadId tid) override;
    void onThreadExit(ThreadId tid) override;
    bool bypassPrivate(ThreadId tid) override;
    bool atomicsBypassPrivate() override;
    void onAtomicOp(ThreadId tid, MemOrder order,
                    bool is_rmw) override;
    void onRegionEnter(ThreadId tid, RegionKind kind) override;
    void onRegionExit(ThreadId tid) override;
    Addr onSyncObjectInit(ThreadId tid, Addr va) override;
    void onSyncAcquire(ThreadId tid) override;
    void onSyncRelease(ThreadId tid) override;
    void onHeapGrow(VPage first, std::uint64_t n) override;
    /// @}

    /** @name Experiment queries */
    /// @{
    /** True once threads have been converted and repair is on. */
    bool repairActive() const { return _converted; }

    /** Simulated time at which repair engaged (Table 3 Unrepaired). */
    Cycles repairStartCycles() const { return _repairStart; }

    /** Total thread-to-process conversion time (Table 3 T2P). */
    Cycles t2pCycles() const { return _t2pTotal; }

    /** Total PTSB commits across all converted threads. */
    std::uint64_t totalCommits() const;

    /** Racy-merge bytes observed across all PTSBs (should be zero
     *  for data-race-free programs, Lemma 3.1). */
    std::uint64_t totalConflictBytes() const;

    /** Pages currently under targeted protection. */
    std::size_t protectedPageCount() const
    {
        return _protectedPages.size();
    }

    /**
     * Tmi's memory overhead beyond the application's own
     * allocations: perf rings, detector metadata, twins, and the
     * internal process-shared region (Figure 8).
     */
    std::uint64_t overheadBytes() const;

    Detector &detector() { return _detector; }
    CodeCentricConsistency &ccc() { return _ccc; }
    /// @}

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    void detectionLoop(ThreadApi &api);
    void convertAllThreads();
    ProcessId convertThread(ThreadId tid);
    void protectPageEverywhere(VPage vpage);
    void commitThread(ThreadId tid);

    Machine &_m;
    TmiConfig _cfg;
    CodeCentricConsistency _ccc;
    Detector _detector;

    std::unordered_map<ProcessId, std::unique_ptr<Ptsb>> _ptsbs;
    std::unordered_set<VPage> _protectedPages;
    bool _converted = false;
    Cycles _repairStart = 0;
    Cycles _t2pTotal = 0;

    stats::Scalar _statConversions;
    stats::Scalar _statPageProtections;
    stats::Scalar _statSyncRedirects;
    stats::Scalar _statFlushCommits;
};

} // namespace tmi

#endif // TMI_RUNTIME_TMI_RUNTIME_HH
