#include "invariants.hh"

#include "common/logging.hh"
#include "core/machine.hh"
#include "ptsb/ptsb.hh"

namespace tmi
{

void
InvariantProbe::violation(const char *who, const char *what)
{
    ++_statViolations;
    warn("invariant: %s violated by %s", what, who);
}

void
InvariantProbe::afterDissolve(const char *who, const Ptsb &ptsb)
{
    if (ptsb.dirtyPages() != 0)
        violation(who, "dissolved PTSB holds uncommitted twins");
    if (ptsb.protectedPages() != 0)
        violation(who, "dissolved PTSB still protects pages");
}

void
InvariantProbe::afterUnrepair(const char *who)
{
    Mmu &mmu = _m.mmu();
    for (ProcessId pid = 0;
         pid < static_cast<ProcessId>(mmu.spaceCount()); ++pid) {
        for (const auto &[vpage, entry] : mmu.space(pid).table()) {
            (void)vpage;
            if (entry.kind == MapKind::PrivateCow ||
                entry.privateFrame != invalidPPage) {
                violation(who,
                          "un-repair orphaned a private mapping");
                return; // one report per un-repair is enough
            }
        }
    }
}

void
InvariantProbe::afterTxnCommit(const char *who, bool conflict_observed)
{
    if (conflict_observed) {
        violation(who, "txn committed after observing a conflicting "
                       "remote store");
    }
}

std::uint64_t
InvariantProbe::epochBefore() const
{
    return _m.accessEpoch().value();
}

void
InvariantProbe::checkEpochBumped(const char *who,
                                 std::uint64_t before)
{
    if (_m.accessEpoch().value() <= before)
        violation(who, "ladder transition left the access epoch "
                       "unbumped");
}

void
InvariantProbe::regStats(stats::StatGroup &group)
{
    group.addScalar("invariantViolations", &_statViolations,
                    "ladder-transition invariant probe failures");
}

} // namespace tmi
