/**
 * @file
 * Ladder-transition invariant probes.
 *
 * Every self-healing transition (dissolve, un-repair, ladder drop or
 * recovery) promises to leave the machine in a state another
 * component could have produced legitimately: no PTSB may keep
 * uncommitted twins after a dissolve (they would be lost writes), no
 * address space may keep private isolation after an un-repair (an
 * orphaned frame diverges silently forever), and the access-path
 * caches must be invalidated across any transition that changes hook
 * behaviour. The chaos oracle treats a probe violation as a failure
 * even when the workload's results happen to come out right -- the
 * PR 3 dissolve-ordering bug produced exactly such a latent state
 * before it corrupted anything.
 *
 * Probes run only at transitions (rare by construction), so they can
 * afford full page-table scans; they charge no simulated cycles.
 */

#ifndef TMI_RUNTIME_INVARIANTS_HH
#define TMI_RUNTIME_INVARIANTS_HH

#include <cstdint>

#include "common/stats.hh"

namespace tmi
{

class Machine;
class Ptsb;

/** Transition-time invariant checker; owned by each runtime. */
class InvariantProbe
{
  public:
    explicit InvariantProbe(Machine &machine) : _m(machine) {}

    /**
     * After a PTSB dissolve: the buffer must hold zero uncommitted
     * twins and protect zero pages. A dirty page here is a write the
     * application already performed but nobody will ever commit.
     */
    void afterDissolve(const char *who, const Ptsb &ptsb);

    /**
     * After an un-repair: no address space may still map a page
     * PrivateCow or hold a live private frame. Such a page keeps
     * diverging from shared memory with no PTSB left to merge it.
     */
    void afterUnrepair(const char *who);

    /**
     * After a transactional commit: the region must not have observed
     * a conflicting remote store (an observing txn aborts instead; a
     * commit that saw one published state another thread raced on).
     * The htm runtime probes this on every commit -- it is the safety
     * half of a backend whose chaos verdicts are otherwise about
     * liveness.
     */
    void afterTxnCommit(const char *who, bool conflict_observed);

    /** Epoch value to capture before a ladder transition... */
    std::uint64_t epochBefore() const;

    /** ...and the check that the transition bumped it: stale access
     *  caches would keep serving the pre-transition hook answers. */
    void checkEpochBumped(const char *who, std::uint64_t before);

    /** Probe failures so far (0 = every transition kept its word). */
    std::uint64_t violations() const
    {
        return static_cast<std::uint64_t>(_statViolations.value());
    }

    /** Register stats under @p group. */
    void regStats(stats::StatGroup &group);

  private:
    void violation(const char *who, const char *what);

    Machine &_m;
    stats::Scalar _statViolations;
};

} // namespace tmi

#endif // TMI_RUNTIME_INVARIANTS_HH
