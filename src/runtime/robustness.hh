/**
 * @file
 * Self-healing policy knobs shared by every supervising runtime.
 *
 * Tmi introduced the degradation ladder (tmi_runtime.hh); the
 * Sheriff and LASER baselines reuse the same policy structure so
 * robustness sweeps compare apples to apples: one config vocabulary,
 * one set of thresholds, three runtimes interpreting them on their
 * own machinery (Tmi's PTSB + detector, Sheriff's always-on
 * isolation, LASER's software store buffer).
 */

#ifndef TMI_RUNTIME_ROBUSTNESS_HH
#define TMI_RUNTIME_ROBUSTNESS_HH

#include "common/types.hh"

namespace tmi
{

/** Self-healing policy knobs (see each runtime's monitor passes). */
struct RobustnessConfig
{
    /** @name Transactional thread-to-process conversion */
    /// @{
    /** Attempts before giving up on repair entirely (>= 1). */
    unsigned t2pMaxAttempts = 4;
    /** Wait after an aborted attempt; doubles per retry. */
    Cycles t2pRetryBackoff = 50'000;
    /** Stall charged to each rolled-back thread (un-fork + resume). */
    Cycles t2pAbortCost = 20'000;
    /// @}

    /** @name Post-repair effectiveness monitor */
    /// @{
    bool monitorEnabled = true;
    /** Analysis windows to let caches settle before judging. */
    unsigned monitorWarmupWindows = 2;
    /** Regressed when overhead > benefit * regressFactor... */
    double regressFactor = 4.0;
    /** ...for this many consecutive windows. */
    unsigned regressWindows = 3;
    /** Overhead below this fraction of a window is never a
     *  regression (ignores noise when both sides are tiny). */
    double minOverheadFraction = 0.02;
    /** Estimated cycles saved per avoided HITM (~remote-dirty
     *  transfer latency). */
    Cycles hitmCostEstimate = 70;
    /** Windows to wait after an un-repair before repairing again. */
    unsigned repairCooldownWindows = 10;
    /** Un-repairs before conceding this workload (drop a rung). */
    unsigned maxUnrepairs = 2;
    /// @}

    /** @name Ladder recovery (RecoverUp) */
    /// @{
    /** Consecutive clean monitor windows on a degraded rung before
     *  climbing one rung back toward the configured mode, resetting
     *  the failure budgets. 0 disables recovery (drops are
     *  permanent, the pre-RecoverUp behaviour). A window is clean
     *  when nothing fired: no rung drop, un-repair, watchdog flush,
     *  regressed-effectiveness window, or lossy perf window. */
    unsigned recoverUpWindows = 0;
    /// @}

    /** @name PTSB livelock watchdog (cholesky, Figure 12) */
    /// @{
    bool watchdogEnabled = true;
    /** A PTSB holding dirty twins with no commits for this long is
     *  force-committed. Must be far above any honest inter-sync
     *  distance; the default only trips genuinely stuck runs. */
    Cycles watchdogTimeout = 2'000'000'000;
    /** Watchdog fires before un-repairing and dropping a rung. */
    unsigned watchdogMaxFlushes = 3;
    /// @}

    /** @name Perf-sampling health */
    /// @{
    /** A window whose lost-record fraction exceeds this is bad... */
    double lostRecordsFraction = 0.5;
    /** ...and this many consecutive bad windows drop a rung. */
    unsigned lostRecordsWindows = 5;
    /** Windows with fewer records than this are not judged. */
    std::uint64_t lostRecordsMinSamples = 16;
    /// @}

    bool operator==(const RobustnessConfig &) const = default;
};

} // namespace tmi

#endif // TMI_RUNTIME_ROBUSTNESS_HH
