#include "tmi_runtime.hh"

namespace tmi
{

namespace
{

DetectorConfig
detectorConfigFor(Machine &machine, const TmiConfig &config)
{
    DetectorConfig dc = config.detector;
    dc.samplePeriod = machine.config().perf.period;
    dc.cyclesPerSecond = machine.config().cyclesPerSecond;
    dc.pageShift = machine.config().pageShift;
    return dc;
}

} // namespace

TmiRuntime::TmiRuntime(Machine &machine, const TmiConfig &config)
    : _m(machine), _cfg(config), _ccc(config.cccEnabled),
      _detector(machine.instructions(), machine.addressMap(),
                detectorConfigFor(machine, config))
{
}

void
TmiRuntime::attach()
{
    _m.setHooks(this);
    _m.mmu().setCowCallback(
        [this](ProcessId pid, VPage vpage, PPage shared_frame,
               PPage private_frame) -> Cycles {
            auto it = _ptsbs.find(pid);
            if (it == _ptsbs.end())
                return 0;
            return it->second->onCowFault(vpage, shared_frame,
                                          private_frame);
        });
    if (_cfg.mode != TmiMode::AllocOnly) {
        _m.spawnSystemThread(
            "tmi-detector",
            [this](ThreadApi &api) { detectionLoop(api); },
            /*daemon=*/true);
    }
}

void
TmiRuntime::onThreadCreate(ThreadId tid)
{
    _ccc.threadStart(tid);
    if (_converted) {
        // Repair is already active: a newly created pthread is born
        // converted, with every targeted page protected.
        ProcessId pid = convertThread(tid);
        Ptsb &ptsb = *_ptsbs.at(pid);
        for (VPage vpage : _protectedPages)
            ptsb.protectPage(vpage);
    }
}

void
TmiRuntime::onThreadExit(ThreadId tid)
{
    // Thread exit has release semantics (a joiner must observe all
    // of the thread's writes): publish any buffered pages.
    commitThread(tid);
}

bool
TmiRuntime::bypassPrivate(ThreadId tid)
{
    return _ccc.mustBypassPrivate(tid);
}

bool
TmiRuntime::atomicsBypassPrivate()
{
    // Running atomics directly on shared pages is how Tmi preserves
    // their atomicity (section 3.4.1 case 2). Disabling CCC removes
    // that protection, reproducing the Sheriff failure mode.
    return _cfg.cccEnabled;
}

void
TmiRuntime::onAtomicOp(ThreadId tid, MemOrder order, bool is_rmw)
{
    // Code-centric consistency keys the flush on the memory order
    // alone: relaxed operations only require atomicity, which
    // running on shared pages already provides (section 3.4.1).
    (void)is_rmw;
    if (_ccc.atomicOpNeedsFlush(order))
        commitThread(tid);
}

void
TmiRuntime::onRegionEnter(ThreadId tid, RegionKind kind)
{
    if (_ccc.regionEnter(tid, kind))
        commitThread(tid);
}

void
TmiRuntime::onRegionExit(ThreadId tid)
{
    _ccc.regionExit(tid);
}

Addr
TmiRuntime::onSyncObjectInit(ThreadId tid, Addr va)
{
    (void)tid;
    if (_cfg.mode == TmiMode::AllocOnly)
        return va;
    // Sync objects must be process-shared in case repair engages, so
    // every one is replaced by a pointer to a cache-line-sized object
    // in Tmi's internal region (section 3.2). This indirection is
    // also what fixes spinlockpool's false sharing automatically.
    ++_statSyncRedirects;
    return _m.internalAlloc(lineBytes);
}

void
TmiRuntime::onSyncAcquire(ThreadId tid)
{
    commitThread(tid);
}

void
TmiRuntime::onSyncRelease(ThreadId tid)
{
    commitThread(tid);
}

void
TmiRuntime::onHeapGrow(VPage first, std::uint64_t n)
{
    if (!_converted || !_cfg.ptsbEverywhere)
        return;
    for (std::uint64_t i = 0; i < n; ++i)
        protectPageEverywhere(first + i);
}

void
TmiRuntime::commitThread(ThreadId tid)
{
    if (!_converted)
        return;
    auto it = _ptsbs.find(_m.processOf(tid));
    if (it == _ptsbs.end())
        return;
    CommitResult res = it->second->commit();
    ++_statFlushCommits;
    _m.sched().advance(res.cost);
}

ProcessId
TmiRuntime::convertThread(ThreadId tid)
{
    ProcessId pid = _m.mmu().cloneAddressSpace(_m.processOf(tid));
    _m.setThreadProcess(tid, pid);
    _ptsbs.emplace(pid, std::make_unique<Ptsb>(_m.mmu(), pid,
                                               _cfg.ptsbCosts,
                                               &_m.cache()));
    // The converted thread was stopped under ptrace, ran the
    // trampoline, and forked; charge it that stall.
    _m.sched().penalize(tid, _cfg.t2pCostPerThread);
    _t2pTotal += _cfg.t2pCostPerThread;
    ++_statConversions;
    return pid;
}

void
TmiRuntime::convertAllThreads()
{
    for (ThreadId tid : _m.appThreads()) {
        if (_m.sched().thread(tid).state() ==
            SimThread::State::Finished) {
            continue;
        }
        convertThread(tid);
    }
    _converted = true;
    _m.flushTlbs();
}

void
TmiRuntime::protectPageEverywhere(VPage vpage)
{
    if (!_protectedPages.insert(vpage).second)
        return;
    ++_statPageProtections;
    Cycles cost = 0;
    for (auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        cost += ptsb->protectPage(vpage);
    }
    _m.flushTlbs();
    _m.sched().advance(cost);
}

void
TmiRuntime::detectionLoop(ThreadApi &api)
{
    Machine &m = api.machine();
    Cycles last = m.sched().now();
    std::vector<PebsRecord> records;
    while (true) {
        m.sched().sleepUntil(last + _cfg.analysisInterval);
        Cycles now = m.sched().now();

        records.clear();
        m.perf().drainAll(records);
        Cycles cost = 0;
        for (const auto &rec : records)
            cost += _detector.consume(rec);

        AnalysisResult res = _detector.analyze(now - last);
        cost += res.cost;
        m.sched().advance(cost);
        last = now;

        if (_cfg.mode != TmiMode::DetectAndRepair)
            continue;
        if (res.pagesToRepair.empty())
            continue;

        if (!_converted) {
            _repairStart = m.sched().now();
            convertAllThreads();
        }
        for (VPage vpage : res.pagesToRepair)
            protectPageEverywhere(vpage);
        if (_cfg.ptsbEverywhere) {
            VPage heap_first =
                Machine::heapBase >> m.config().pageShift;
            std::uint64_t heap_pages = m.heapRegion().pages();
            for (std::uint64_t i = 0; i < heap_pages; ++i)
                protectPageEverywhere(heap_first + i);
        }
    }
}

std::uint64_t
TmiRuntime::totalCommits() const
{
    std::uint64_t n = 0;
    for (const auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        n += ptsb->commits();
    }
    return n;
}

std::uint64_t
TmiRuntime::totalConflictBytes() const
{
    std::uint64_t n = 0;
    for (const auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        n += ptsb->conflictBytes();
    }
    return n;
}

std::uint64_t
TmiRuntime::overheadBytes() const
{
    std::uint64_t twin_bytes = 0;
    for (const auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        twin_bytes += ptsb->twinBytes();
    }
    std::uint64_t ring_bytes = 0;
    if (_cfg.mode != TmiMode::AllocOnly) {
        ring_bytes = _cfg.modeledRingBytesPerThread *
                     _m.appThreads().size();
    }
    return ring_bytes + _detector.metadataBytes() + twin_bytes +
           _m.internalBytes();
}

void
TmiRuntime::regStats(stats::StatGroup &group)
{
    group.addScalar("t2pConversions", &_statConversions,
                    "threads converted to processes");
    group.addScalar("pagesProtected", &_statPageProtections,
                    "distinct pages placed under the PTSB");
    group.addScalar("syncRedirects", &_statSyncRedirects,
                    "sync objects moved to process-shared memory");
    group.addScalar("flushCommits", &_statFlushCommits,
                    "PTSB commits triggered by hooks");
    _detector.regStats(group);
    _ccc.regStats(group);
}

} // namespace tmi
