#include "tmi_runtime.hh"

namespace tmi
{

namespace
{

DetectorConfig
detectorConfigFor(Machine &machine, const TmiConfig &config)
{
    DetectorConfig dc = config.detector;
    dc.samplePeriod = machine.config().perf.period;
    dc.cyclesPerSecond = machine.config().cyclesPerSecond;
    dc.pageShift = machine.config().pageShift;
    return dc;
}

} // namespace

const char *
tmiModeName(TmiMode mode)
{
    switch (mode) {
      case TmiMode::AllocOnly:
        return "alloc-only";
      case TmiMode::DetectOnly:
        return "detect-only";
      case TmiMode::DetectAndRepair:
        return "detect-and-repair";
    }
    return "unknown";
}

TmiRuntime::TmiRuntime(Machine &machine, const TmiConfig &config)
    : _m(machine), _cfg(config), _invariants(machine),
      _trace(machine.trace()), _ccc(config.cccEnabled),
      _detector(machine.instructions(), machine.addressMap(),
                detectorConfigFor(machine, config)),
      _rung(config.mode)
{
}

void
validateConfig(const TmiConfig &config,
               std::vector<ConfigError> &errors,
               const std::string &prefix)
{
    if (config.analysisInterval == 0) {
        errors.push_back(
            {prefix + ".analysisInterval",
             "must be nonzero: the detection thread would re-run "
             "analysis every cycle without ever letting the "
             "application advance"});
    }
    if (config.robust.t2pMaxAttempts == 0) {
        errors.push_back(
            {prefix + ".robust.t2pMaxAttempts",
             "must be >= 1: zero attempts means repair can never "
             "engage, which is DetectOnly mode spelled confusingly"});
    }
    if (config.robust.watchdogEnabled &&
        config.robust.watchdogTimeout < config.analysisInterval) {
        errors.push_back(
            {prefix + ".robust.watchdogTimeout",
             "is below the analysis interval: every window with a "
             "dirty twin would be flushed, destroying the PTSB's "
             "benefit"});
    }
    validateConfig(config.detector, errors, prefix + ".detector");
}

void
TmiRuntime::attach()
{
    std::vector<ConfigError> errors;
    validateConfig(_cfg, errors);
    fatalIfConfigErrors(errors);
    _m.setHooks(this);
    _m.mmu().setCowCallback(
        [this](ProcessId pid, VPage vpage, PPage shared_frame,
               PPage private_frame) -> CowOutcome {
            auto it = _ptsbs.find(pid);
            if (it == _ptsbs.end())
                return {};
            CowOutcome out = it->second->onCowFault(
                vpage, shared_frame, private_frame);
            if (out.ok)
                _windowOverhead += out.cost;
            return out;
        });
    _m.mmu().setCowAbortCallback(
        [this](ProcessId pid, VPage vpage) {
            // The MMU reverted the page to SharedRW (no frame or no
            // twin). Writes go straight to shared memory -- exactly
            // the unrepaired behaviour -- so only isolation is lost.
            auto it = _ptsbs.find(pid);
            if (it != _ptsbs.end())
                it->second->forgetPage(vpage);
            ++_statCowFallbacks;
            if (_trace) {
                _trace->recordHere(obs::EventKind::CowFallback, vpage,
                                   pid);
            }
        });
    if (_cfg.mode != TmiMode::AllocOnly) {
        _m.spawnSystemThread(
            "tmi-detector",
            [this](ThreadApi &api) { detectionLoop(api); },
            /*daemon=*/true);
    }
}

void
TmiRuntime::onThreadCreate(ThreadId tid)
{
    _ccc.threadStart(tid);
    if (_converted) {
        // Repair is already active: a newly created pthread is born
        // converted, with every targeted page protected.
        ProcessId pid = convertThread(tid);
        if (pid == invalidProcessId) {
            // Clone failed: the thread stays in its parent's process
            // and shares its parent's PTSB view. Less isolation, same
            // semantics (a per-process buffer, as in Sheriff).
            warn("tmi: could not isolate new thread %u; it remains "
                 "in its parent's process",
                 static_cast<unsigned>(tid));
            return;
        }
        Ptsb &ptsb = *_ptsbs.at(pid);
        for (VPage vpage : _protectedPages)
            ptsb.protectPage(vpage);
    }
}

void
TmiRuntime::onThreadExit(ThreadId tid)
{
    // Thread exit has release semantics (a joiner must observe all
    // of the thread's writes): publish any buffered pages.
    commitThread(tid);
}

bool
TmiRuntime::bypassPrivate(ThreadId tid)
{
    return _ccc.mustBypassPrivate(tid);
}

bool
TmiRuntime::atomicsBypassPrivate()
{
    // Running atomics directly on shared pages is how Tmi preserves
    // their atomicity (section 3.4.1 case 2). Disabling CCC removes
    // that protection, reproducing the Sheriff failure mode.
    return _cfg.cccEnabled;
}

void
TmiRuntime::onAtomicOp(ThreadId tid, MemOrder order, bool is_rmw)
{
    // Code-centric consistency keys the flush on the memory order
    // alone: relaxed operations only require atomicity, which
    // running on shared pages already provides (section 3.4.1).
    (void)is_rmw;
    if (_ccc.atomicOpNeedsFlush(order))
        commitThread(tid);
}

void
TmiRuntime::onRegionEnter(ThreadId tid, RegionKind kind)
{
    if (_ccc.regionEnter(tid, kind))
        commitThread(tid);
}

void
TmiRuntime::onRegionExit(ThreadId tid)
{
    _ccc.regionExit(tid);
}

Addr
TmiRuntime::onSyncObjectInit(ThreadId tid, Addr va)
{
    (void)tid;
    if (_cfg.mode == TmiMode::AllocOnly)
        return va;
    // Sync objects must be process-shared in case repair engages, so
    // every one is replaced by a pointer to a cache-line-sized object
    // in Tmi's internal region (section 3.2). This indirection is
    // also what fixes spinlockpool's false sharing automatically.
    ++_statSyncRedirects;
    return _m.internalAlloc(lineBytes);
}

void
TmiRuntime::onSyncAcquire(ThreadId tid)
{
    commitThread(tid);
}

void
TmiRuntime::onSyncRelease(ThreadId tid)
{
    commitThread(tid);
}

void
TmiRuntime::onHeapGrow(VPage first, std::uint64_t n)
{
    if (!repairActive() || !_cfg.ptsbEverywhere)
        return;
    for (std::uint64_t i = 0; i < n; ++i)
        protectPageEverywhere(first + i);
}

void
TmiRuntime::commitThread(ThreadId tid)
{
    if (!_converted)
        return;
    auto it = _ptsbs.find(_m.processOf(tid));
    if (it == _ptsbs.end())
        return;
    CommitResult res = it->second->commit();
    ++_statFlushCommits;
    _windowOverhead += res.cost;
    if (_trace && res.pagesDiffed > 0) {
        _trace->recordHere(obs::EventKind::PtsbCommit,
                           res.bytesChanged, res.cost);
    }
    _m.sched().advance(res.cost);
}

ProcessId
TmiRuntime::convertThread(ThreadId tid)
{
    ProcessId pid = _m.mmu().cloneAddressSpace(_m.processOf(tid));
    if (pid == invalidProcessId)
        return invalidProcessId;
    _m.setThreadProcess(tid, pid);
    _ptsbs.emplace(pid, std::make_unique<Ptsb>(_m.mmu(), pid,
                                               _cfg.ptsbCosts,
                                               &_m.cache(),
                                               &_m.faults()));
    // The converted thread was stopped under ptrace, ran the
    // trampoline, and forked; charge it that stall.
    _m.sched().penalize(tid, _cfg.t2pCostPerThread);
    _t2pTotal += _cfg.t2pCostPerThread;
    ++_statConversions;
    return pid;
}

bool
TmiRuntime::tryConvertAllThreads()
{
    struct Conversion
    {
        ThreadId tid;
        ProcessId oldPid;
        ProcessId newPid;
    };
    std::vector<Conversion> done;
    FaultInjector &faults = _m.faults();

    auto rollback = [&](const char *why, ThreadId culprit) {
        warn("tmi: T2P transaction aborted at thread %u (%s); "
             "rolling back %zu converted thread(s)",
             static_cast<unsigned>(culprit), why, done.size());
        for (auto it = done.rbegin(); it != done.rend(); ++it) {
            _m.setThreadProcess(it->tid, it->oldPid);
            _ptsbs.erase(it->newPid);
            // Un-fork + resume stall for the victim of the rollback.
            _m.sched().penalize(it->tid, _cfg.robust.t2pAbortCost);
        }
        ++_statT2pAborts;
        if (_trace) {
            _trace->recordHere(obs::EventKind::T2pRollback, culprit,
                               0, why);
        }
    };

    for (ThreadId tid : _m.appThreads()) {
        if (_m.sched().thread(tid).state() ==
            SimThread::State::Finished) {
            continue;
        }
        if (faults.enabled() &&
            faults.shouldFail(faultpoint::schedStopTimeout)) {
            // The thread never reached its ptrace stop point (stuck
            // in an uninterruptible syscall, say): without a stopped
            // thread there is nothing safe to fork.
            rollback("refused to stop", tid);
            return false;
        }
        ProcessId old_pid = _m.processOf(tid);
        ProcessId new_pid = convertThread(tid);
        if (new_pid == invalidProcessId) {
            rollback("address-space clone failed", tid);
            return false;
        }
        done.push_back({tid, old_pid, new_pid});
    }
    _converted = true;
    _m.flushTlbs();
    if (_trace) {
        _trace->recordHere(obs::EventKind::T2pCommit, done.size(),
                           done.size() * _cfg.t2pCostPerThread);
    }
    return true;
}

bool
TmiRuntime::engageRepair()
{
    const RobustnessConfig &rc = _cfg.robust;
    Cycles backoff = rc.t2pRetryBackoff;
    for (unsigned attempt = 1; attempt <= rc.t2pMaxAttempts;
         ++attempt) {
        if (_trace)
            _trace->recordHere(obs::EventKind::T2pBegin, attempt);
        if (tryConvertAllThreads())
            return true;
        if (attempt == rc.t2pMaxAttempts)
            break;
        warn("tmi: T2P attempt %u/%u failed; backing off %lu cycles",
             attempt, rc.t2pMaxAttempts,
             static_cast<unsigned long>(backoff));
        _m.sched().sleepUntil(_m.sched().now() + backoff);
        backoff *= 2;
    }
    degradeTo(TmiMode::DetectOnly,
              "T2P conversion failed on every attempt");
    return false;
}

void
TmiRuntime::protectPageEverywhere(VPage vpage)
{
    if (!_protectedPages.insert(vpage).second)
        return;
    ++_statPageProtections;
    if (_trace)
        _trace->recordHere(obs::EventKind::PageProtect, vpage);
    Cycles cost = 0;
    for (auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        cost += ptsb->protectPage(vpage);
    }
    _m.flushTlbs();
    _m.sched().advance(cost);
}

Cycles
TmiRuntime::unrepair(const char *reason)
{
    Cycles cost = 0;
    for (auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        cost += ptsb->dissolve();
    }
    _protectedPages.clear();
    _m.flushTlbs();
    for (const auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        _invariants.afterDissolve("tmi un-repair", *ptsb);
    }
    _invariants.afterUnrepair("tmi un-repair");
    _watch.clear();
    _regressStreak = 0;
    _windowsSinceRepair = 0;
    _windowsSinceUnrepair = 0;
    _watchdogFires = 0;
    ++_unrepairs;
    ++_statUnrepairs;
    _dirtyWindow = true;
    if (_trace) {
        _trace->recordHere(obs::EventKind::Unrepair, _unrepairs, 0,
                           reason);
    }
    warn("tmi: un-repaired (%s); rollback %u of %u", reason,
         _unrepairs, _cfg.robust.maxUnrepairs);
    if (_unrepairs >= _cfg.robust.maxUnrepairs) {
        degradeTo(TmiMode::DetectOnly,
                  "repair rollback budget exhausted");
    }
    return cost;
}

void
TmiRuntime::degradeTo(TmiMode mode, const char *reason)
{
    if (static_cast<int>(mode) >= static_cast<int>(_rung))
        return;
    std::uint64_t epoch_before = _invariants.epochBefore();
    warn("tmi: degrading %s -> %s (%s)", tmiModeName(_rung),
         tmiModeName(mode), reason);
    if (_trace) {
        _trace->recordHere(obs::EventKind::LadderDrop,
                           static_cast<std::uint64_t>(_rung),
                           static_cast<std::uint64_t>(mode), reason);
    }
    _rung = mode;
    ++_statLadderDrops;
    _dirtyWindow = true;
    _cleanWindows = 0;
    // Rung changes alter hook behaviour: kill the access-path caches.
    _m.accessEpoch().bump();
    _invariants.checkEpochBumped("tmi ladder drop", epoch_before);
}

void
TmiRuntime::maybeRecoverUp()
{
    const RobustnessConfig &rc = _cfg.robust;
    bool dirty = _dirtyWindow;
    _dirtyWindow = false;
    if (rc.recoverUpWindows == 0)
        return;
    if (static_cast<int>(_rung) >= static_cast<int>(_cfg.mode))
        return; // not degraded; nothing to recover
    if (dirty) {
        _cleanWindows = 0;
        return;
    }
    if (++_cleanWindows < rc.recoverUpWindows)
        return;
    _cleanWindows = 0;
    std::uint64_t epoch_before = _invariants.epochBefore();
    TmiMode from = _rung;
    _rung = static_cast<TmiMode>(static_cast<int>(_rung) + 1);
    // A recovered rung starts with fresh failure budgets; otherwise
    // the first post-recovery hiccup would instantly re-drop.
    _unrepairs = 0;
    _watchdogFires = 0;
    _regressStreak = 0;
    _lossStreak = 0;
    ++_statLadderRecovers;
    warn("tmi: recovering %s -> %s after %u clean windows",
         tmiModeName(from), tmiModeName(_rung), rc.recoverUpWindows);
    if (_trace) {
        _trace->recordHere(obs::EventKind::LadderRecover,
                           static_cast<std::uint64_t>(from),
                           static_cast<std::uint64_t>(_rung),
                           "clean-window streak");
    }
    // Re-armed hooks change access behaviour: kill the caches.
    _m.accessEpoch().bump();
    _invariants.checkEpochBumped("tmi ladder recover", epoch_before);
}

void
TmiRuntime::checkPerfHealth(Cycles window)
{
    (void)window;
    const RobustnessConfig &rc = _cfg.robust;
    std::uint64_t lost = _m.perf().recordsLost();
    std::uint64_t emitted = _m.perf().recordsEmitted();
    std::uint64_t d_lost = lost - _lastLost;
    std::uint64_t d_kept = emitted - _lastEmitted;
    _lastLost = lost;
    _lastEmitted = emitted;

    if (d_lost + d_kept < rc.lostRecordsMinSamples)
        return; // too few samples to judge this window
    double frac =
        static_cast<double>(d_lost) /
        static_cast<double>(d_lost + d_kept);
    if (frac > rc.lostRecordsFraction) {
        ++_lossStreak;
        _dirtyWindow = true;
    } else {
        _lossStreak = 0;
    }
    if (_lossStreak < rc.lostRecordsWindows)
        return;
    _lossStreak = 0;

    if (_rung == TmiMode::DetectAndRepair) {
        // Repair decisions based on samples this lossy would be
        // noise; keep observing, stop acting.
        if (repairActive()) {
            _m.sched().advance(
                unrepair("perf sampling unreliable"));
        }
        degradeTo(TmiMode::DetectOnly,
                  "perf rings persistently overflowing");
    } else if (_rung == TmiMode::DetectOnly) {
        degradeTo(TmiMode::AllocOnly,
                  "perf still unreliable; stopping the sampler");
    }
}

void
TmiRuntime::updateEffectiveness(Cycles window)
{
    const RobustnessConfig &rc = _cfg.robust;
    std::uint64_t hitm = _m.cache().hitmEvents();
    std::uint64_t window_hitm = hitm - _lastHitm;
    _lastHitm = hitm;
    Cycles overhead = _windowOverhead;
    _windowOverhead = 0;
    if (window == 0)
        return;

    if (!repairActive()) {
        // Learn the baseline HITM rate so a later repair has
        // something to be compared against.
        double rate = static_cast<double>(window_hitm) /
                      static_cast<double>(window);
        _preRepairHitmRate = _preRepairHitmRate == 0.0
                                 ? rate
                                 : 0.75 * _preRepairHitmRate +
                                       0.25 * rate;
        ++_windowsSinceUnrepair;
        return;
    }
    if (!rc.monitorEnabled)
        return;
    if (++_windowsSinceRepair <= rc.monitorWarmupWindows)
        return;

    double avoided = _preRepairHitmRate *
                         static_cast<double>(window) -
                     static_cast<double>(window_hitm);
    double benefit =
        avoided > 0
            ? avoided * static_cast<double>(rc.hitmCostEstimate)
            : 0.0;
    bool regressed =
        static_cast<double>(overhead) >
            static_cast<double>(window) * rc.minOverheadFraction &&
        static_cast<double>(overhead) >
            benefit * rc.regressFactor;
    _regressStreak = regressed ? _regressStreak + 1 : 0;
    if (regressed)
        _dirtyWindow = true;
    if (_regressStreak >= rc.regressWindows) {
        _m.sched().advance(
            unrepair("repair overhead dwarfs its HITM benefit"));
    }
}

void
TmiRuntime::runWatchdog(Cycles window)
{
    const RobustnessConfig &rc = _cfg.robust;
    if (!rc.watchdogEnabled || !repairActive())
        return;
    Cycles flush_cost = 0;
    bool fired = false;
    for (auto &[pid, ptsb] : _ptsbs) {
        PtsbWatch &w = _watch[pid];
        std::uint64_t commits = ptsb->commits();
        if (ptsb->dirtyPages() == 0 || commits != w.lastCommits) {
            w.lastCommits = commits;
            w.stall = 0;
            continue;
        }
        w.stall += window;
        if (w.stall < rc.watchdogTimeout)
            continue;
        // This process has buffered writes nobody else can see and
        // has not committed for the whole stall: the Figure 12
        // cholesky livelock. Committing on its behalf is always
        // safe -- it is the flush the thread would eventually issue.
        CommitResult res = ptsb->commit();
        flush_cost += res.cost;
        w.stall = 0;
        w.lastCommits = ptsb->commits();
        fired = true;
        if (_trace)
            _trace->recordHere(obs::EventKind::WatchdogFlush, pid);
    }
    if (!fired)
        return;
    ++_watchdogFires;
    ++_statWatchdogFlushes;
    _dirtyWindow = true;
    warn("tmi: watchdog force-committed stalled PTSB(s), fire %u "
         "of %u",
         _watchdogFires, rc.watchdogMaxFlushes);
    _m.sched().advance(flush_cost);
    if (_watchdogFires >= rc.watchdogMaxFlushes) {
        _m.sched().advance(
            unrepair("repeated PTSB-induced livelock"));
        degradeTo(TmiMode::DetectOnly,
                  "watchdog flush budget exhausted");
    }
}

void
TmiRuntime::detectionLoop(ThreadApi &api)
{
    Machine &m = api.machine();
    Cycles last = m.sched().now();
    std::vector<PebsRecord> records;
    while (true) {
        m.sched().sleepUntil(last + _cfg.analysisInterval);
        Cycles now = m.sched().now();
        Cycles window = now - last;
        last = now;

        if (_rung == TmiMode::AllocOnly) {
            // Ladder floor: sampling proved useless, so records are
            // discarded undecoded. Only the allocator and sync
            // redirection (which need no thread) keep working.
            records.clear();
            m.perf().drainAll(records);
            // Floor windows are trivially clean (nothing can fire);
            // RecoverUp is the only way off the floor.
            maybeRecoverUp();
            continue;
        }

        records.clear();
        m.perf().drainAll(records);
        Cycles cost = 0;
        for (const auto &rec : records)
            cost += _detector.consume(rec);

        AnalysisResult res = _detector.analyze(window);
        cost += res.cost;
        m.sched().advance(cost);
        if (_trace) {
            _trace->recordHere(obs::EventKind::AnalysisWindow,
                               records.size(),
                               res.pagesToRepair.size());
        }

        checkPerfHealth(window);
        updateEffectiveness(window);
        runWatchdog(window);
        maybeRecoverUp();

        if (_rung != TmiMode::DetectAndRepair)
            continue;
        if (res.pagesToRepair.empty())
            continue;
        if (_unrepairs > 0 &&
            _windowsSinceUnrepair <
                _cfg.robust.repairCooldownWindows) {
            continue; // hysteresis: no repair/un-repair flapping
        }

        if (_trace) {
            _trace->recordHere(obs::EventKind::RepairEngage,
                               res.pagesToRepair.size());
        }
        if (!_converted) {
            Cycles t0 = m.sched().now();
            if (!engageRepair())
                continue;
            _repairStart = t0;
        }
        for (VPage vpage : res.pagesToRepair)
            protectPageEverywhere(vpage);
        if (_cfg.ptsbEverywhere) {
            VPage heap_first =
                Machine::heapBase >> m.config().pageShift;
            std::uint64_t heap_pages = m.heapRegion().pages();
            for (std::uint64_t i = 0; i < heap_pages; ++i)
                protectPageEverywhere(heap_first + i);
        }
    }
}

std::uint64_t
TmiRuntime::totalCommits() const
{
    std::uint64_t n = 0;
    for (const auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        n += ptsb->commits();
    }
    return n;
}

std::uint64_t
TmiRuntime::totalConflictBytes() const
{
    std::uint64_t n = 0;
    for (const auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        n += ptsb->conflictBytes();
    }
    return n;
}

std::uint64_t
TmiRuntime::overheadBytes() const
{
    std::uint64_t twin_bytes = 0;
    for (const auto &[pid, ptsb] : _ptsbs) {
        (void)pid;
        twin_bytes += ptsb->twinBytes();
    }
    std::uint64_t ring_bytes = 0;
    if (_cfg.mode != TmiMode::AllocOnly) {
        ring_bytes = _cfg.modeledRingBytesPerThread *
                     _m.appThreads().size();
    }
    return ring_bytes + _detector.metadataBytes() + twin_bytes +
           _m.internalBytes();
}

void
TmiRuntime::regStats(stats::StatGroup &group)
{
    group.addScalar("t2pConversions", &_statConversions,
                    "threads converted to processes");
    group.addScalar("pagesProtected", &_statPageProtections,
                    "distinct pages placed under the PTSB");
    group.addScalar("syncRedirects", &_statSyncRedirects,
                    "sync objects moved to process-shared memory");
    group.addScalar("flushCommits", &_statFlushCommits,
                    "PTSB commits triggered by hooks");
    group.addScalar("t2pAborts", &_statT2pAborts,
                    "T2P transactions aborted and rolled back");
    group.addScalar("unrepairs", &_statUnrepairs,
                    "repairs rolled back (PTSB dissolved)");
    group.addScalar("watchdogFlushes", &_statWatchdogFlushes,
                    "watchdog force-commits of stalled PTSBs");
    group.addScalar("ladderDrops", &_statLadderDrops,
                    "degradation-ladder transitions");
    group.addScalar("ladderRecovers", &_statLadderRecovers,
                    "rungs climbed back by the RecoverUp policy");
    group.addScalar("cowFallbacks", &_statCowFallbacks,
                    "COW faults degraded to shared writes");
    _invariants.regStats(group);
    _detector.regStats(group);
    _ccc.regStats(group);
}

} // namespace tmi
