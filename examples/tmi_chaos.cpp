/**
 * @file
 * tmi-chaos: the chaos campaign front-end.
 *
 * Three subcommands over src/chaos/:
 *
 *   tmi-chaos campaign --workloads histogramfs,lreg \
 *       --treatments tmi-protect,sheriff-protect \
 *       [--schedules N] [--campaign-seed S] [--threads N]
 *       [--scale N] [--budget N] [--param key=value]...
 *       [--min-events N] [--max-events N]
 *       [--watchdog 0|1] [--monitor 0|1] [--recover-up N]
 *       [--no-minimize] [--minimize-limit N] [--repro-dir DIR]
 *       [--workers N] [--retries N] [--timeout-ms N]
 *       [--csv out.csv] [--no-progress] [--verbose]
 *       [--journal-dir DIR] [--shards N] [--resume]
 *       [--checkpoint-every K] [--kill-budget N]
 *
 *     Runs goldens + N generated fault schedules per cell, streams
 *     the campaign CSV (schema: scripts/check_chaos.py), and shrinks
 *     failures to minimal reproducer spec files under --repro-dir.
 *     The CSV is byte-identical for any --workers value.
 *
 *     --journal-dir turns on crash-safe orchestration: schedules run
 *     in --shards worker processes journaling every result, a
 *     schedule that kills its worker twice is quarantined
 *     (status=poisoned) instead of sinking the campaign, and a
 *     killed campaign continues with --resume, reproducing the
 *     uninterrupted CSV byte for byte. Exit status: 0 = every run
 *     executed and passed its oracle, 1 = an oracle failure OR any
 *     job that failed/crashed/was quarantined, 2 = usage error.
 *
 *   tmi-chaos replay <spec-file> [--expect-fail] [--verbose]
 *       [--param key=value]...
 *
 *     Re-runs one schedule spec (fresh golden + faulted run) and
 *     prints the verdict. Exit 0 when the verdict is pass -- or,
 *     with --expect-fail, when the oracle (still) catches the
 *     failure, which is how CI pins checked-in regression
 *     reproducers. --param passes workload knobs into the base
 *     config exactly as the campaign subcommand does, so a
 *     reproducer minimized from a parameterized campaign replays
 *     under the same knobs.
 *
 *   tmi-chaos minimize <spec-file> [--out file.spec] [--verbose]
 *       [--param key=value]...
 *
 *     Delta-debugs a failing spec to a 1-minimal reproducer.
 *
 *   tmi-chaos --list-fault-points
 *
 *     The full fault-point registry schedules are drawn from.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "chaos/campaign.hh"
#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "workloads/params.hh"

using namespace tmi;

namespace
{

[[noreturn]] void
usageError(const std::string &message)
{
    std::fprintf(stderr, "tmi-chaos: %s\n", message.c_str());
    std::exit(2);
}

void
listFaultPoints()
{
    for (const FaultPointInfo &info : FaultInjector::allPoints())
        std::printf("%-26s %s\n", info.name, info.summary);
}

chaos::ChaosSchedule
loadSchedule(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        usageError("cannot read spec file '" + path + "'");
    std::ostringstream text;
    text << is.rdbuf();
    chaos::ChaosSchedule sched;
    std::string err;
    if (!chaos::parseScheduleSpec(text.str(), sched, err))
        usageError(path + ": " + err);
    return sched;
}

void
printRow(const chaos::CampaignRow &row)
{
    std::fprintf(stderr,
                 "[chaos] %s: %s (%s) rung=%s fires=%llu "
                 "slowdown=%.2f\n",
                 row.schedule.summary().c_str(),
                 chaos::verdictName(row.judgement.verdict),
                 row.judgement.reason.c_str(),
                 row.run.ladderRung.empty()
                     ? "-"
                     : row.run.ladderRung.c_str(),
                 static_cast<unsigned long long>(row.run.faultFires),
                 row.slowdown);
}

int
cmdCampaign(int argc, char **argv)
{
    chaos::CampaignSpec spec;
    driver::RunnerOptions opts;
    opts.workers = 1;
    opts.progress = true;
    std::string csv_path;
    std::string repro_dir;
    bool verbose = false;
    std::string journal_dir;
    unsigned shards = 1;
    bool resume = false;
    unsigned kill_budget = 2;
    std::uint64_t checkpoint_every = 16;
    bool sharded_flags = false;

    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usageError("'" + arg + "' needs a value");
            return argv[++i];
        };
        std::string err;
        if (arg == "--workloads") {
            spec.workloads = driver::splitList(next());
        } else if (arg == "--treatments") {
            if (!driver::parseTreatmentList(next(), spec.treatments,
                                            err)) {
                usageError(err);
            }
        } else if (arg == "--schedules") {
            spec.schedules = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--campaign-seed") {
            spec.campaignSeed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--threads") {
            spec.base.run.threads =
                static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--scale") {
            spec.base.run.scale = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--budget") {
            spec.base.run.budget = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--param") {
            std::pair<std::string, std::string> kv;
            if (!parseParamAssignment(next(), kv, err))
                usageError("--param: " + err);
            spec.base.run.params.push_back(kv);
        } else if (arg == "--watchdog") {
            spec.base.run.watchdog = std::atoi(next());
        } else if (arg == "--monitor") {
            spec.base.run.monitor = std::atoi(next());
        } else if (arg == "--recover-up") {
            spec.base.tmi.robust.recoverUpWindows =
                static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--min-events") {
            spec.generator.minEvents =
                static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--max-events") {
            spec.generator.maxEvents =
                static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--no-minimize") {
            spec.minimizeFailures = false;
        } else if (arg == "--minimize-limit") {
            spec.minimizeLimit =
                static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--buggy-dissolve") {
            spec.sheriffBuggyDissolve = true;
        } else if (arg == "--repro-dir") {
            repro_dir = next();
        } else if (arg == "--workers") {
            opts.workers = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--retries") {
            opts.maxAttempts =
                static_cast<unsigned>(std::atoi(next())) + 1;
        } else if (arg == "--timeout-ms") {
            opts.jobTimeout = std::chrono::milliseconds(
                std::strtoll(next(), nullptr, 10));
        } else if (arg == "--csv") {
            csv_path = next();
        } else if (arg == "--journal-dir") {
            journal_dir = next();
        } else if (arg == "--shards") {
            shards = static_cast<unsigned>(std::atoi(next()));
            sharded_flags = true;
        } else if (arg == "--resume") {
            resume = true;
            sharded_flags = true;
        } else if (arg == "--checkpoint-every") {
            checkpoint_every = static_cast<std::uint64_t>(
                std::strtoull(next(), nullptr, 10));
            sharded_flags = true;
        } else if (arg == "--kill-budget") {
            kill_budget = static_cast<unsigned>(std::atoi(next()));
            sharded_flags = true;
        } else if (arg == "--no-progress") {
            opts.progress = false;
        } else if (arg == "--verbose") {
            verbose = true;
        } else {
            usageError("unknown campaign flag '" + arg + "'");
        }
    }
    if (!verbose)
        setLogLevel(LogLevel::Quiet);
    if (sharded_flags && journal_dir.empty()) {
        usageError("--shards/--resume/--checkpoint-every/"
                   "--kill-budget need --journal-dir");
    }

    std::vector<ConfigError> errors = spec.validate();
    if (!errors.empty()) {
        for (const ConfigError &e : errors) {
            std::fprintf(stderr, "tmi-chaos: %s: %s\n",
                         e.field.c_str(), e.message.c_str());
        }
        return 2;
    }

    std::ofstream csv_file;
    if (!csv_path.empty()) {
        csv_file.open(csv_path);
        if (!csv_file)
            usageError("cannot write '" + csv_path + "'");
    }
    std::ostream &os = csv_path.empty() ? std::cout : csv_file;
    if (csv_path.empty())
        opts.progress = false;

    chaos::CampaignOutcome outcome;
    driver::ShardRunStats shard_stats;
    if (!journal_dir.empty()) {
        chaos::ShardedCampaignOptions sharded;
        sharded.shard.shards = shards;
        sharded.shard.journalDir = journal_dir;
        sharded.shard.resume = resume;
        sharded.shard.killBudget = kill_budget;
        sharded.shard.checkpointEvery = checkpoint_every;
        sharded.shard.runner = opts;
        sharded.shard.runner.progress = false;
        try {
            outcome = chaos::runCampaignSharded(spec, sharded, &os,
                                                &shard_stats);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "tmi-chaos: %s\n", e.what());
            return 2;
        }
        std::fprintf(
            stderr,
            "[chaos] %llu shard(s): %llu crash(es), %llu "
            "respawn(s), %llu poisoned, %llu job(s) resumed from "
            "journals\n",
            static_cast<unsigned long long>(shard_stats.shards),
            static_cast<unsigned long long>(shard_stats.crashes),
            static_cast<unsigned long long>(shard_stats.respawns),
            static_cast<unsigned long long>(shard_stats.poisoned),
            static_cast<unsigned long long>(shard_stats.resumedJobs));
    } else {
        driver::Runner runner(opts);
        outcome = chaos::runCampaign(spec, runner, &os);
    }

    for (const auto &repro : outcome.reproducers) {
        std::fprintf(
            stderr,
            "[chaos] minimized %s: %zu -> %zu events in %u probes "
            "(%s)\n",
            repro.minimized.summary().c_str(),
            repro.stats.originalEvents, repro.stats.minimizedEvents,
            repro.stats.probes,
            chaos::verdictName(repro.judgement.verdict));
        if (repro_dir.empty())
            continue;
        std::filesystem::create_directories(repro_dir);
        std::ostringstream name;
        name << repro_dir << "/repro_" << repro.minimized.workload
             << "_" << treatmentName(repro.minimized.treatment)
             << "_" << repro.minimized.index << ".spec";
        std::ofstream rf(name.str());
        if (!rf) {
            std::fprintf(stderr, "tmi-chaos: cannot write '%s'\n",
                         name.str().c_str());
            continue;
        }
        rf << chaos::writeScheduleSpec(repro.minimized);
        std::fprintf(stderr, "[chaos] wrote %s\n",
                     name.str().c_str());
    }

    std::fprintf(stderr,
                 "[chaos] campaign seed %llu: %llu judged, %llu "
                 "passed, %llu failed, %llu skipped\n",
                 static_cast<unsigned long long>(spec.campaignSeed),
                 static_cast<unsigned long long>(outcome.judged),
                 static_cast<unsigned long long>(outcome.passed),
                 static_cast<unsigned long long>(outcome.failed),
                 static_cast<unsigned long long>(outcome.skipped));
    // A campaign is only a success when every run executed AND
    // passed: a crashed or quarantined job must not be laundered
    // into "skipped" silence.
    if (!outcome.clean()) {
        std::fprintf(
            stderr,
            "[chaos] FAILED: %llu oracle failure(s), %llu job(s) "
            "did not execute (crashed/failed/quarantined)\n",
            static_cast<unsigned long long>(outcome.failed),
            static_cast<unsigned long long>(outcome.jobFailures));
        return 1;
    }
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    std::string path;
    bool expect_fail = false;
    bool verbose = false;
    Config base;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usageError("'" + arg + "' needs a value");
            return argv[++i];
        };
        if (arg == "--expect-fail")
            expect_fail = true;
        else if (arg == "--param") {
            std::pair<std::string, std::string> kv;
            std::string err;
            if (!parseParamAssignment(next(), kv, err))
                usageError("--param: " + err);
            base.run.params.push_back(std::move(kv));
        } else if (arg == "--verbose")
            verbose = true;
        else if (!arg.empty() && arg[0] != '-')
            path = arg;
        else
            usageError("unknown replay flag '" + arg + "'");
    }
    if (path.empty())
        usageError("replay needs a spec file");
    if (!verbose)
        setLogLevel(LogLevel::Quiet);

    chaos::CampaignRow row =
        chaos::replaySchedule(loadSchedule(path), base);
    printRow(row);
    bool caught = row.judgement.fail();
    if (expect_fail) {
        std::fprintf(stderr,
                     caught ? "[chaos] reproducer still caught\n"
                            : "[chaos] reproducer NO LONGER FAILS\n");
        return caught ? 0 : 1;
    }
    return row.judgement.pass() ? 0 : 1;
}

int
cmdMinimize(int argc, char **argv)
{
    std::string path;
    std::string out_path;
    bool verbose = false;
    Config base;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usageError("'" + arg + "' needs a value");
            return argv[++i];
        };
        if (arg == "--out")
            out_path = next();
        else if (arg == "--param") {
            std::pair<std::string, std::string> kv;
            std::string err;
            if (!parseParamAssignment(next(), kv, err))
                usageError("--param: " + err);
            base.run.params.push_back(std::move(kv));
        } else if (arg == "--verbose")
            verbose = true;
        else if (!arg.empty() && arg[0] != '-')
            path = arg;
        else
            usageError("unknown minimize flag '" + arg + "'");
    }
    if (path.empty())
        usageError("minimize needs a spec file");
    if (!verbose)
        setLogLevel(LogLevel::Quiet);

    chaos::ChaosSchedule sched = loadSchedule(path);
    Config golden_cfg = sched.toConfig(base);
    golden_cfg.run.faults.clear();
    RunResult golden = runExperiment(golden_cfg);

    if (!chaos::judge(golden, runExperiment(sched.toConfig(base)))
             .fail()) {
        std::fprintf(stderr,
                     "tmi-chaos: '%s' does not fail; nothing to "
                     "minimize\n",
                     path.c_str());
        return 1;
    }

    chaos::MinimizeStats stats;
    chaos::ChaosSchedule minimal = chaos::minimizeSchedule(
        sched,
        [&](const chaos::ChaosSchedule &s) {
            return chaos::judge(golden,
                                runExperiment(s.toConfig(base)))
                .fail();
        },
        &stats);

    std::fprintf(stderr,
                 "[chaos] minimized %zu -> %zu events in %u probes\n",
                 stats.originalEvents, stats.minimizedEvents,
                 stats.probes);
    std::string text = chaos::writeScheduleSpec(minimal);
    if (out_path.empty()) {
        std::fputs(text.c_str(), stdout);
    } else {
        std::ofstream os(out_path);
        if (!os)
            usageError("cannot write '" + out_path + "'");
        os << text;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usageError("need a subcommand: campaign, replay, minimize, "
                   "or --list-fault-points");
    }
    std::string cmd = argv[1];
    if (cmd == "--list-fault-points") {
        listFaultPoints();
        return 0;
    }
    if (cmd == "campaign")
        return cmdCampaign(argc - 2, argv + 2);
    if (cmd == "replay")
        return cmdReplay(argc - 2, argv + 2);
    if (cmd == "minimize")
        return cmdMinimize(argc - 2, argv + 2);
    usageError("unknown subcommand '" + cmd + "'");
}
