/**
 * @file
 * Run a workload under tmi-detect and print a detection report:
 * what perf saw, what the detector classified, and what repair
 * would target -- without modifying the application.
 *
 * Usage: detector_report [workload] [threads] [scale] [period]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.hh"
#include "runtime/tmi_runtime.hh"
#include "workloads/workload.hh"

using namespace tmi;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "leveldb";
    unsigned threads = argc > 2 ? std::atoi(argv[2]) : 4;
    std::uint64_t scale = argc > 3 ? std::atoll(argv[3]) : 4;
    std::uint64_t period = argc > 4 ? std::atoll(argv[4]) : 100;

    const WorkloadInfo &info = findWorkload(name);

    MachineConfig mc;
    mc.cores = threads;
    mc.shmBackedHeap = true;
    mc.tmiModifiedAllocator = true;
    mc.perf.period = period;
    Machine machine(mc);

    WorkloadParams params;
    params.threads = threads;
    params.scale = scale;
    std::unique_ptr<Workload> workload = info.make(params);
    workload->init(machine);

    TmiConfig tc;
    tc.mode = TmiMode::DetectOnly;
    tc.analysisInterval = 500'000;
    TmiRuntime tmi(machine, tc);
    tmi.attach();

    Workload *wl = workload.get();
    machine.spawnThread(name + "-main",
                        [wl](ThreadApi &api) { wl->main(api); });
    RunOutcome outcome = machine.sched().run(60'000'000'000ULL);

    double secs = machine.elapsed() / mc.cyclesPerSecond;
    const Detector &det = tmi.detector();

    std::printf("== detection report: %s (%u threads, period %llu) "
                "==\n",
                name.c_str(), threads,
                static_cast<unsigned long long>(period));
    std::printf("outcome             : %s, %s\n",
                outcome == RunOutcome::Completed ? "completed"
                                                 : "did not complete",
                workload->validate(machine) ? "valid" : "INVALID");
    std::printf("simulated time      : %.3f ms\n", secs * 1e3);
    std::printf("HITM events (true)  : %llu\n",
                static_cast<unsigned long long>(
                    machine.cache().hitmEvents()));
    std::printf("PEBS records        : %llu emitted, %llu lost\n",
                static_cast<unsigned long long>(
                    machine.perf().recordsEmitted()),
                static_cast<unsigned long long>(
                    machine.perf().recordsLost()));
    std::printf("records classified  : %llu (%llu filtered by the "
                "address map)\n",
                static_cast<unsigned long long>(
                    det.recordsClassified()),
                static_cast<unsigned long long>(det.recordsFiltered()));
    std::printf("false sharing       : %.0f events/s estimated\n",
                det.fsEventsEstimated() / secs);
    std::printf("true sharing        : %.0f events/s estimated\n",
                det.tsEventsEstimated() / secs);
    std::printf("contended lines     : %zu tracked\n",
                det.trackedLines());
    std::printf("detector metadata   : %.2f MB\n",
                det.metadataBytes() / 1048576.0);
    std::printf("runtime overhead    : %.1f MB (perf rings + "
                "detector + internal)\n",
                tmi.overheadBytes() / 1048576.0);

    auto top = det.topContendedLines(5);
    if (!top.empty()) {
        std::printf("\nhottest lines (FS events, then the per-thread "
                    "byte ranges observed):\n");
        for (const auto &line : top) {
            std::printf("  line %#llx : %8.0f FS, %8.0f TS\n",
                        static_cast<unsigned long long>(line.lineAddr),
                        line.fsEvents, line.tsEvents);
            for (const auto &acc : line.accesses) {
                std::printf("      thread %-2u %-5s bytes "
                            "[%2u, %2u)\n",
                            acc.tid, acc.isWrite ? "store" : "load",
                            acc.offset, acc.offset + acc.width);
            }
        }
    }

    if (det.fsEventsEstimated() / secs >
        tc.detector.repairThreshold) {
        std::printf("\nverdict: repairable false sharing present -- "
                    "tmi-protect would engage.\n");
    } else if (det.tsEventsEstimated() > det.fsEventsEstimated()) {
        std::printf("\nverdict: contention is mostly true sharing -- "
                    "memory-layout repair would not help.\n");
    } else {
        std::printf("\nverdict: no significant cache contention.\n");
    }
    return 0;
}
