/**
 * @file
 * Code-centric consistency demo: the three consistency artifacts of
 * the paper in one program.
 *
 *  1. Figure 3: the AMBSA (word tearing) violation -- two racing
 *     2-byte stores through PTSBs merge into a value neither thread
 *     wrote. Run directly against the PTSB substrate.
 *  2. Table 2: the cross-region semantics matrix the runtime
 *     enforces.
 *  3. Figures 11/12: canneal and cholesky, correct under Tmi with
 *     CCC, broken under a PTSB without it.
 */

#include <cstdio>

#include "consistency/ccc.hh"
#include "core/config.hh"
#include "ptsb/ptsb.hh"

using namespace tmi;

namespace
{

void
figure3Demo()
{
    std::printf("-- Figure 3: aligned multi-byte store atomicity --\n");
    Mmu mmu(smallPageShift);
    ShmRegion region("demo", mmu.phys());
    region.grow(1);
    ProcessId p0 = mmu.createAddressSpace();
    ProcessId p1 = mmu.createAddressSpace();
    constexpr Addr va = 0x10000000;
    mmu.mapShared(p0, va, region, 0, 1);
    mmu.mapShared(p1, va, region, 0, 1);

    Ptsb ptsb0(mmu, p0), ptsb1(mmu, p1);
    mmu.setCowCallback([&](ProcessId pid, VPage vp, PPage sf,
                           PPage pf) -> CowOutcome {
        return (pid == p0 ? ptsb0 : ptsb1).onCowFault(vp, sf, pf);
    });
    ptsb0.protectPage(va >> smallPageShift);
    ptsb1.protectPage(va >> smallPageShift);

    // Thread 0: store x <- 0xAB00; Thread 1: store x <- 0x00CD.
    std::uint16_t s0 = 0xAB00, s1 = 0x00CD;
    mmu.write(p0, va, &s0, 2);
    mmu.write(p1, va, &s1, 2);
    ptsb0.commit();
    ptsb1.commit();

    std::uint16_t x = 0;
    mmu.readShared(p0, va, &x, 2);
    std::printf("racing stores 0xAB00 and 0x00CD -> x == 0x%04X "
                "(a value NO thread stored)\n",
                x);
    std::printf("=> PTSBs are only safe where data races make "
                "behaviour undefined.\n\n");
}

void
table2Demo()
{
    std::printf("-- Table 2: where Tmi permits the PTSB --\n");
    const RegionKind kinds[] = {RegionKind::Regular,
                                RegionKind::Atomic, RegionKind::Asm};
    for (RegionKind a : kinds) {
        for (RegionKind b : kinds) {
            std::printf("  %-8s x %-8s : case %d, PTSB %s\n",
                        regionName(a), regionName(b),
                        interactionCase(a, b),
                        ptsbPermitted(a, b) ? "permitted"
                                            : "FORBIDDEN");
        }
    }
    std::printf("\n");
}

void
caseStudy(const char *workload, Treatment broken_treatment)
{
    ExperimentBuilder cell = Experiment::builder()
                                 .workload(workload)
                                 .threads(4)
                                 .scale(2)
                                 // force the PTSB onto its pages
                                 .repairThreshold(1.0)
                                 .analysisInterval(300'000)
                                 .budget(1'500'000'000ULL);
    auto run = [&cell](Treatment t) {
        ExperimentBuilder b = cell;
        return b.treatment(t).run();
    };

    RunResult with_ccc = run(Treatment::TmiProtect);
    RunResult without = run(broken_treatment);

    auto describe = [](const RunResult &res) {
        if (res.compatible)
            return "correct";
        return res.outcome == RunOutcome::Timeout ? "HANGS"
                                                  : "CORRUPTED";
    };
    std::printf("  %-10s with CCC: %-9s without CCC: %s\n", workload,
                describe(with_ccc), describe(without));
}

} // namespace

int
main()
{
    std::printf("== code-centric consistency demo ==\n\n");
    figure3Demo();
    table2Demo();
    std::printf("-- Figures 11/12: case studies under the PTSB --\n");
    caseStudy("canneal", Treatment::TmiProtectNoCcc);
    caseStudy("cholesky", Treatment::TmiProtectNoCcc);
    std::printf("\ncanneal's asm-region atomic swaps and cholesky's "
                "volatile flag only survive\nthe PTSB because "
                "code-centric consistency runs them on shared "
                "memory.\n");
    return 0;
}
