/**
 * @file
 * General-purpose experiment CLI: run any (workload x treatment)
 * cell of the evaluation matrix with full control over the knobs,
 * and optionally dump every component statistic.
 *
 * Usage:
 *   experiment_cli --workload leveldb --treatment tmi-protect \
 *       [--threads 4] [--scale 4] [--period 100] [--huge-pages]
 *       [--threshold 100000] [--seed 42] [--stats] [--list]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.hh"
#include "workloads/workload.hh"

using namespace tmi;

namespace
{

Treatment
parseTreatment(const std::string &name)
{
    const Treatment all[] = {
        Treatment::Pthreads,       Treatment::Manual,
        Treatment::TmiAlloc,       Treatment::TmiDetect,
        Treatment::TmiProtect,     Treatment::TmiProtectNoCcc,
        Treatment::PtsbEverywhere, Treatment::SheriffDetect,
        Treatment::SheriffProtect, Treatment::Laser,
    };
    for (Treatment t : all) {
        if (name == treatmentName(t))
            return t;
    }
    std::fprintf(stderr, "unknown treatment '%s'; one of:\n",
                 name.c_str());
    for (Treatment t : all)
        std::fprintf(stderr, "  %s\n", treatmentName(t));
    std::exit(2);
}

void
listWorkloads()
{
    std::printf("%-16s %-6s %-10s %s\n", "name", "fs?", "overhead?",
                "atomics/asm?");
    for (const auto &info : workloadRegistry()) {
        std::printf("%-16s %-6s %-10s %s\n", info.name.c_str(),
                    info.knownFalseSharing ? "yes" : "-",
                    info.inOverheadSet ? "yes" : "-",
                    info.usesAtomicsOrAsm ? "yes" : "-");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentConfig cfg;
    cfg.workload = "histogramfs";
    bool stats = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workload") {
            cfg.workload = next();
        } else if (arg == "--treatment") {
            cfg.treatment = parseTreatment(next());
        } else if (arg == "--threads") {
            cfg.threads = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--scale") {
            cfg.scale = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--period") {
            cfg.perfPeriod = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--threshold") {
            cfg.repairThreshold = std::atof(next());
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--budget") {
            cfg.budget = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--huge-pages") {
            cfg.pageShift = hugePageShift;
        } else if (arg == "--glibc-allocator") {
            cfg.allocator = AllocatorKind::GlibcLike;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--list") {
            listWorkloads();
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            return 2;
        }
    }
    cfg.dumpStats = stats;

    RunResult res = runExperiment(cfg);
    std::printf("workload      : %s\n", res.workload.c_str());
    std::printf("treatment     : %s\n", treatmentName(res.treatment));
    std::printf("outcome       : %s%s\n",
                res.outcome == RunOutcome::Completed ? "completed"
                : res.outcome == RunOutcome::Timeout ? "TIMEOUT"
                                                     : "DEADLOCK",
                res.compatible       ? " (valid)"
                : res.outcome == RunOutcome::Completed
                    ? " (INVALID RESULT)"
                    : "");
    std::printf("simulated time: %.3f ms (%llu cycles)\n",
                res.seconds * 1e3,
                static_cast<unsigned long long>(res.cycles));
    std::printf("memory ops    : %llu (%llu HITM, %llu PEBS "
                "records)\n",
                static_cast<unsigned long long>(res.memOps),
                static_cast<unsigned long long>(res.hitmEvents),
                static_cast<unsigned long long>(res.pebsRecords));
    std::printf("app memory    : %.2f MB peak (+%.2f MB runtime "
                "overhead)\n",
                res.appBytesPeak / 1048576.0,
                res.overheadBytes / 1048576.0);
    if (res.repairActive) {
        std::printf("repair        : engaged at %.3f ms; T2P %.1f us; "
                    "%llu pages; %llu commits (%.0f/s)\n",
                    res.repairStartCycles / 3.4e6,
                    res.t2pCycles / 3.4e3,
                    static_cast<unsigned long long>(
                        res.pagesProtected),
                    static_cast<unsigned long long>(res.commits),
                    res.commitsPerSec);
        if (res.conflictBytes) {
            std::printf("WARNING       : %llu racy-merge bytes -- the "
                        "PTSB raced with itself; results suspect\n",
                        static_cast<unsigned long long>(
                            res.conflictBytes));
        }
    }
    if (res.fsEventsEstimated || res.tsEventsEstimated) {
        std::printf("detector      : %.0f FS ev/s, %.0f TS ev/s "
                    "estimated\n",
                    res.fsEventsEstimated / res.seconds,
                    res.tsEventsEstimated / res.seconds);
    }
    if (stats)
        std::printf("\n%s", res.statsText.c_str());
    return res.compatible ? 0 : 1;
}
