/**
 * @file
 * General-purpose experiment CLI: run any (workload x treatment)
 * cell of the evaluation matrix with full control over the knobs,
 * and export what happened -- component statistics, a Chrome trace
 * of the run, a CSV time series, or a human-readable report.
 *
 * Usage:
 *   experiment_cli --workload leveldb --treatment tmi-protect \
 *       [--threads 4] [--scale 4] [--period 100] [--huge-pages]
 *       [--threshold 100000] [--interval 2000000] [--seed 42]
 *       [--budget N] [--glibc-allocator] [--stats]
 *       [--placement default|pack|arena|isolate]
 *       [--param key=value]... [--family NAME]
 *       [--list-workloads] [--list-treatments] [--list-fault-points]
 *       [--fault point:SPEC]... [--fault-seed N]
 *       [--watchdog 0|1] [--monitor 0|1] [--watchdog-timeout N]
 *       [--trace] [--ring N] [--trace-out run.json]
 *       [--trace-csv run.csv] [--report] [--csv-out row.csv]
 *       [--plan-in plan.txt] [--plan-out plan.txt]
 *
 * Fault SPECs: always | once | once=N | p=0.5 | every=N.
 *
 * --plan-in / --plan-out serve the huron-static treatment: --plan-out
 * saves the layout plan the profiling phase synthesized, --plan-in
 * replays a saved plan directly (profiling is skipped). Together they
 * split the offline pipeline across invocations, which is what lets
 * CI pin a golden plan.
 *
 * --trace-out writes Chrome trace_event JSON: load it in
 * chrome://tracing or https://ui.perfetto.dev to scrub through the
 * detect -> repair -> fault -> ladder-drop timeline.
 *
 * --param passes one typed workload knob (repeatable); run
 * --list-workloads to see each workload's schema (knob names, types,
 * defaults). --family NAME restricts --list-workloads to one family;
 * give it before --list-workloads (flags apply in order).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/config.hh"
#include "obs/export.hh"
#include "workloads/workload.hh"

using namespace tmi;

namespace
{

Treatment
parseTreatment(const std::string &name)
{
    if (const Treatment *t = tryParseTreatment(name))
        return *t;
    std::fprintf(stderr, "unknown treatment '%s'; one of:\n",
                 name.c_str());
    for (Treatment t : allTreatments())
        std::fprintf(stderr, "  %s\n", treatmentName(t));
    std::exit(2);
}

void
listTreatments()
{
    for (Treatment t : allTreatments()) {
        std::printf("%-18s %s\n", treatmentName(t),
                    treatmentDescription(t));
    }
}

/** Parse "point:SPEC" (SPEC: always|once|once=N|p=0.5|every=N). */
std::pair<std::string, FaultSpec>
parseFault(const std::string &arg)
{
    auto colon = arg.find(':');
    if (colon == std::string::npos || colon == 0) {
        std::fprintf(stderr,
                     "--fault wants point:SPEC, got '%s'\n",
                     arg.c_str());
        std::exit(2);
    }
    std::string point = arg.substr(0, colon);
    std::string spec = arg.substr(colon + 1);
    if (spec == "always")
        return {point, FaultSpec::always()};
    if (spec == "once")
        return {point, FaultSpec::once()};
    if (spec.rfind("once=", 0) == 0) {
        return {point, FaultSpec::once(std::strtoull(
                           spec.c_str() + 5, nullptr, 10))};
    }
    if (spec.rfind("p=", 0) == 0) {
        return {point, FaultSpec::withProbability(
                           std::atof(spec.c_str() + 2))};
    }
    if (spec.rfind("every=", 0) == 0) {
        FaultSpec s;
        s.everyNth = std::strtoull(spec.c_str() + 6, nullptr, 10);
        return {point, s};
    }
    std::fprintf(stderr,
                 "bad fault SPEC '%s'; one of always, once, once=N, "
                 "p=0.5, every=N\n",
                 spec.c_str());
    std::exit(2);
}

void
listFaultPoints()
{
    for (const FaultPointInfo &info : FaultInjector::allPoints())
        std::printf("%-26s %s\n", info.name, info.summary);
}

void
listWorkloads(const std::string &family)
{
    std::printf("%-16s %-8s %-6s %-10s %s\n", "name", "family",
                "fs?", "overhead?", "atomics/asm?");
    bool any = false;
    for (const auto &info : workloadRegistry()) {
        if (!family.empty() && info.family != family)
            continue;
        any = true;
        std::printf("%-16s %-8s %-6s %-10s %s\n", info.name.c_str(),
                    info.family.c_str(),
                    info.knownFalseSharing ? "yes" : "-",
                    info.inOverheadSet ? "yes" : "-",
                    info.usesAtomicsOrAsm ? "yes" : "-");
        for (const ParamSpec &p : info.schema.specs()) {
            std::printf("    --param %-16s %-7s default=%-8s %s\n",
                        p.name.c_str(), paramTypeName(p.type),
                        p.defaultText().c_str(), p.desc.c_str());
        }
    }
    if (!any && !family.empty()) {
        std::fprintf(stderr, "no workloads in family '%s'; one of:\n",
                     family.c_str());
        for (const std::string &f : workloadFamilies())
            std::fprintf(stderr, "  %s\n", f.c_str());
        std::exit(2);
    }
}

/** Open @p path for writing or die. */
std::ofstream
openOut(const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
        std::exit(2);
    }
    return os;
}

/** Slurp @p path or die. */
std::string
readAll(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "cannot read '%s'\n", path.c_str());
        std::exit(2);
    }
    std::ostringstream text;
    text << is.rdbuf();
    return text.str();
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentBuilder builder = Experiment::builder();
    builder.workload("histogramfs");
    bool stats = false;
    bool report = false;
    std::string trace_out, trace_csv, csv_out;
    std::string plan_out;
    std::string family_filter;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workload") {
            builder.workload(next());
        } else if (arg == "--treatment") {
            builder.treatment(parseTreatment(next()));
        } else if (arg == "--threads") {
            builder.threads(static_cast<unsigned>(std::atoi(next())));
        } else if (arg == "--scale") {
            builder.scale(std::strtoull(next(), nullptr, 10));
        } else if (arg == "--period") {
            builder.perfPeriod(std::strtoull(next(), nullptr, 10));
        } else if (arg == "--threshold") {
            builder.repairThreshold(std::atof(next()));
        } else if (arg == "--interval") {
            builder.analysisInterval(
                std::strtoull(next(), nullptr, 10));
        } else if (arg == "--seed") {
            builder.seed(std::strtoull(next(), nullptr, 10));
        } else if (arg == "--budget") {
            builder.budget(std::strtoull(next(), nullptr, 10));
        } else if (arg == "--param") {
            std::pair<std::string, std::string> kv;
            std::string perr;
            if (!parseParamAssignment(next(), kv, perr)) {
                std::fprintf(stderr, "--param: %s\n", perr.c_str());
                return 2;
            }
            builder.param(kv.first, kv.second);
        } else if (arg == "--family") {
            family_filter = next();
        } else if (arg == "--huge-pages") {
            builder.pageShift(hugePageShift);
        } else if (arg == "--glibc-allocator") {
            builder.allocator(AllocatorKind::GlibcLike);
        } else if (arg == "--placement") {
            std::string name = next();
            const PlacementPolicy *p = tryParsePlacement(name);
            if (!p) {
                std::fprintf(stderr,
                             "unknown placement '%s'; one of:\n",
                             name.c_str());
                for (PlacementPolicy pp : allPlacements())
                    std::fprintf(stderr, "  %s\n", placementName(pp));
                return 2;
            }
            builder.placement(*p);
        } else if (arg == "--fault") {
            auto [point, spec] = parseFault(next());
            builder.fault(point, spec);
        } else if (arg == "--fault-seed") {
            builder.faultSeed(std::strtoull(next(), nullptr, 10));
        } else if (arg == "--watchdog") {
            builder.watchdog(std::atoi(next()));
        } else if (arg == "--monitor") {
            builder.monitor(std::atoi(next()));
        } else if (arg == "--watchdog-timeout") {
            builder.watchdogTimeout(
                std::strtoull(next(), nullptr, 10));
        } else if (arg == "--trace") {
            builder.trace(true);
        } else if (arg == "--ring") {
            obs::TraceConfig tc;
            tc.enabled = true;
            tc.ringCapacity = std::strtoull(next(), nullptr, 10);
            builder.trace(tc);
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--trace-csv") {
            trace_csv = next();
        } else if (arg == "--csv-out") {
            csv_out = next();
        } else if (arg == "--plan-in") {
            builder.planIn(readAll(next()));
        } else if (arg == "--plan-out") {
            plan_out = next();
        } else if (arg == "--report") {
            report = true;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--list" || arg == "--list-workloads") {
            listWorkloads(family_filter);
            return 0;
        } else if (arg == "--list-treatments") {
            listTreatments();
            return 0;
        } else if (arg == "--list-fault-points") {
            listFaultPoints();
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            return 2;
        }
    }
    builder.dumpStats(stats);
    // Any trace consumer implies recording.
    if (!trace_out.empty() || !trace_csv.empty() || report)
        builder.trace(true);

    Config cfg = builder.build();
    double cps = cfg.machine.cyclesPerSecond;
    RunResult res = runExperiment(cfg);

    std::printf("workload      : %s\n", res.workload.c_str());
    std::printf("treatment     : %s\n", treatmentName(res.treatment));
    std::printf("outcome       : %s%s\n",
                res.outcome == RunOutcome::Completed ? "completed"
                : res.outcome == RunOutcome::Timeout ? "TIMEOUT"
                                                     : "DEADLOCK",
                res.compatible       ? " (valid)"
                : res.outcome == RunOutcome::Completed
                    ? " (INVALID RESULT)"
                    : "");
    std::printf("simulated time: %.3f ms (%llu cycles)\n",
                res.seconds * 1e3,
                static_cast<unsigned long long>(res.cycles));
    std::printf("memory ops    : %llu (%llu HITM, %llu PEBS "
                "records)\n",
                static_cast<unsigned long long>(res.memOps),
                static_cast<unsigned long long>(res.hitmEvents),
                static_cast<unsigned long long>(res.pebsRecords));
    std::printf("app memory    : %.2f MB peak (+%.2f MB runtime "
                "overhead)\n",
                res.appBytesPeak / 1048576.0,
                res.overheadBytes / 1048576.0);
    if (res.requests) {
        std::printf("sojourn       : %llu requests; p50 %.0f / p99 "
                    "%.0f / p999 %.0f cycles\n",
                    static_cast<unsigned long long>(res.requests),
                    res.sojournP50, res.sojournP99, res.sojournP999);
    }
    if (res.treatment == Treatment::HuronStatic) {
        std::printf("static plan   : %llu site(s), %llu applied, "
                    "%llu redirected, %llu bytes padding; profile "
                    "saw %llu HITM\n",
                    static_cast<unsigned long long>(res.planSites),
                    static_cast<unsigned long long>(
                        res.planAppliedSites),
                    static_cast<unsigned long long>(
                        res.planRedirectedSites),
                    static_cast<unsigned long long>(
                        res.planPaddingBytes),
                    static_cast<unsigned long long>(
                        res.planProfileHitms));
    }
    if (res.treatment == Treatment::HtmElide) {
        std::uint64_t tries = res.txnCommits + res.txnAborts;
        std::printf("htm           : %llu commits, %llu aborts "
                    "(%.1f%% abort rate), %llu lock fallbacks; "
                    "rung %s\n",
                    static_cast<unsigned long long>(res.txnCommits),
                    static_cast<unsigned long long>(res.txnAborts),
                    tries ? 100.0 * res.txnAborts / tries : 0.0,
                    static_cast<unsigned long long>(
                        res.txnFallbackLocks),
                    res.ladderRung.c_str());
    } else if (res.repairActive) {
        std::printf("repair        : engaged at %.3f ms; T2P %.1f us; "
                    "%llu pages; %llu commits (%.0f/s)\n",
                    res.repairStartCycles / (cps / 1e3),
                    res.t2pCycles / (cps / 1e6),
                    static_cast<unsigned long long>(
                        res.pagesProtected),
                    static_cast<unsigned long long>(res.commits),
                    res.commitsPerSec);
        if (res.conflictBytes) {
            std::printf("WARNING       : %llu racy-merge bytes -- the "
                        "PTSB raced with itself; results suspect\n",
                        static_cast<unsigned long long>(
                            res.conflictBytes));
        }
    }
    if (res.fsEventsEstimated || res.tsEventsEstimated) {
        std::printf("detector      : %.0f FS ev/s, %.0f TS ev/s "
                    "estimated\n",
                    res.fsEventsEstimated / res.seconds,
                    res.tsEventsEstimated / res.seconds);
    }
    if (cfg.run.trace.enabled) {
        std::printf("trace         : %llu events recorded, %llu lost "
                    "to ring wraparound\n",
                    static_cast<unsigned long long>(res.traceRecorded),
                    static_cast<unsigned long long>(
                        res.traceOverwritten));
    }

    if (!trace_out.empty()) {
        obs::ChromeTraceMeta meta;
        meta.cyclesPerSecond = cps;
        meta.processName = std::string(res.workload) + " / " +
                           treatmentName(res.treatment);
        std::ofstream os = openOut(trace_out);
        obs::writeChromeTrace(os, res.traceEvents, meta);
        std::printf("trace-out     : %s (%zu events; open in "
                    "ui.perfetto.dev)\n",
                    trace_out.c_str(), res.traceEvents.size());
    }
    if (!trace_csv.empty()) {
        std::ofstream os = openOut(trace_csv);
        obs::writeCsvTimeSeries(os, res.traceEvents, cps,
                                cfg.run.analysisInterval);
        std::printf("trace-csv     : %s (%llu-cycle windows)\n",
                    trace_csv.c_str(),
                    static_cast<unsigned long long>(
                        cfg.run.analysisInterval));
    }
    if (!csv_out.empty()) {
        std::ofstream os = openOut(csv_out);
        os << robustnessCsvHeader() << "\n"
           << robustnessCsvRow(res, "cli", 1.0) << "\n";
        std::printf("csv-out       : %s\n", csv_out.c_str());
    }
    if (!plan_out.empty()) {
        if (res.planText.empty()) {
            std::fprintf(stderr,
                         "--plan-out: no plan to save (treatment "
                         "'%s' does not synthesize one)\n",
                         treatmentName(res.treatment));
            return 2;
        }
        std::ofstream os = openOut(plan_out);
        os << res.planText;
        std::printf("plan-out      : %s (%llu site(s))\n",
                    plan_out.c_str(),
                    static_cast<unsigned long long>(res.planSites));
    }
    if (report) {
        std::printf("\n");
        obs::writeTraceReport(std::cout, res.traceEvents, cps);
    }
    if (stats)
        std::printf("\n%s", res.statsText.c_str());
    return res.compatible ? 0 : 1;
}
