/**
 * @file
 * The paper's real-world story end to end: a leveldb-like key-value
 * store with an injected false sharing bug (per-thread op counters
 * packed into one cache line), repaired online by Tmi while the
 * database keeps serving requests -- no restart, no source access.
 *
 * Usage: leveldb_repair [threads] [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "core/config.hh"

using namespace tmi;

int
main(int argc, char **argv)
{
    unsigned threads = argc > 1 ? std::atoi(argv[1]) : 4;
    std::uint64_t scale = argc > 2 ? std::atoll(argv[2]) : 8;

    ExperimentBuilder cell = Experiment::builder()
                                 .workload("leveldb")
                                 .threads(threads)
                                 .scale(scale)
                                 .analysisInterval(500'000);
    auto run = [&cell](Treatment t) {
        ExperimentBuilder b = cell;
        return b.treatment(t).run();
    };

    std::printf("== leveldb with an injected false sharing bug ==\n");
    std::printf("(per-thread stat counters packed into one cache "
                "line; %u client threads)\n\n",
                threads);

    RunResult base = run(Treatment::Pthreads);
    std::printf("unmodified run      : %8.3f ms, %llu HITM events, "
                "%s\n",
                base.seconds * 1e3,
                static_cast<unsigned long long>(base.hitmEvents),
                base.compatible ? "valid" : "INVALID");

    RunResult tmi = run(Treatment::TmiProtect);
    std::printf("under tmi           : %8.3f ms, %llu HITM events, "
                "%s\n\n",
                tmi.seconds * 1e3,
                static_cast<unsigned long long>(tmi.hitmEvents),
                tmi.compatible ? "valid" : "INVALID");

    std::printf("repair timeline:\n");
    std::printf("  detection fired at %.3f ms (the 'unrepaired' "
                "prefix)\n",
                tmi.repairStartCycles / 3.4e6);
    std::printf("  %u threads converted to processes in %.0f us "
                "total\n",
                threads + 1, tmi.t2pCycles / 3.4e3);
    std::printf("  %llu page(s) placed under the PTSB (targeted: the "
                "counter line's page)\n",
                static_cast<unsigned long long>(tmi.pagesProtected));
    std::printf("  %llu PTSB commits (%.0f/s) at sync operations and "
                "seq_cst atomics\n\n",
                static_cast<unsigned long long>(tmi.commits),
                tmi.commitsPerSec);

    RunResult manual = run(Treatment::Manual);
    double s_tmi = speedup(base, tmi);
    double s_manual = speedup(base, manual);
    std::printf("speedup: tmi %.2fx vs manual source fix %.2fx "
                "(%.0f%% captured, zero code changes)\n",
                s_tmi, s_manual,
                s_manual > 1.0
                    ? 100.0 * (s_tmi - 1.0) / (s_manual - 1.0)
                    : 0.0);
    std::printf("(paper: 3.8x, 88%% of the manual fix)\n");

    // The database must still be correct: leveldb uses lock-free
    // atomics that a less careful PTSB would corrupt.
    ExperimentBuilder sheriff_b = cell;
    RunResult sheriff = sheriff_b.treatment(Treatment::SheriffProtect)
                            .budget(base.cycles * 25)
                            .run();
    std::printf("\nfor contrast, a Sheriff-style always-on PTSB: %s\n",
                sheriff.compatible
                    ? "(unexpectedly survived)"
                    : "CORRUPTS the store (its CAS claims race on "
                      "private pages)");
    return tmi.compatible ? 0 : 1;
}
