/**
 * @file
 * tmi-sweep: run a whole experiment matrix in one command.
 *
 * A sweep is a base configuration plus value lists for the evaluation
 * axes (workload x treatment x scale x period x fault-point x
 * fault-rate x seed). The matrix is expanded once, executed on a host
 * worker pool with retries and per-job timeouts, and streamed as the
 * canonical sweep CSV (schema: scripts/check_sweep.py) in job-id
 * order -- the CSV is byte-identical for any --workers value.
 *
 * Usage:
 *   tmi-sweep --workloads histogramfs,counterarray \
 *       --treatments pthreads,tmi-protect [--scales 2,4] \
 *       [--periods 100,1000] [--seeds 1,2,3] \
 *       [--fault-points mem.frame_exhausted] \
 *       [--fault-rates 0,0.1,0.5] \
 *       [--threads N] [--budget N] [--spec sweep.conf] \
 *       [--workers N] [--retries N] [--timeout-ms N] \
 *       [--csv out.csv] [--no-progress] [--dry-run] [--verbose] \
 *       [--list-workloads] [--list-treatments] [--list-fault-points]
 *
 * --spec reads the same keys from a key=value file (one per line,
 * #-comments); flags apply after the file, appending to axis lists.
 * CSV goes to stdout unless --csv is given; progress and the summary
 * go to stderr. Exit status: 0 = every job ok, 1 = some job failed
 * or timed out, 2 = usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "driver/runner.hh"
#include "workloads/workload.hh"

using namespace tmi;

namespace
{

[[noreturn]] void
usageError(const std::string &message)
{
    std::fprintf(stderr, "tmi-sweep: %s\n", message.c_str());
    std::exit(2);
}

void
applyOrDie(driver::SweepSpec &spec, const std::string &key,
           const std::string &value)
{
    std::string err;
    if (!driver::applySpecEntry(spec, key, value, err))
        usageError(err);
}

void
loadSpecFile(driver::SweepSpec &spec, const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        usageError("cannot read spec file '" + path + "'");
    std::ostringstream text;
    text << is.rdbuf();
    std::string err;
    if (!driver::parseSpecText(spec, text.str(), err))
        usageError(path + ": " + err);
}

} // namespace

int
main(int argc, char **argv)
{
    driver::SweepSpec spec;
    driver::RunnerOptions opts;
    opts.workers = 1;
    opts.progress = true;
    std::string csv_path;
    bool dry_run = false;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usageError("'" + arg + "' needs a value");
            return argv[++i];
        };
        if (arg == "--spec") {
            loadSpecFile(spec, next());
        } else if (arg == "--workloads") {
            applyOrDie(spec, "workloads", next());
        } else if (arg == "--treatments") {
            applyOrDie(spec, "treatments", next());
        } else if (arg == "--scales") {
            applyOrDie(spec, "scales", next());
        } else if (arg == "--periods") {
            applyOrDie(spec, "periods", next());
        } else if (arg == "--fault-points") {
            applyOrDie(spec, "fault_points", next());
        } else if (arg == "--fault-rates") {
            applyOrDie(spec, "fault_rates", next());
        } else if (arg == "--seeds") {
            applyOrDie(spec, "seeds", next());
        } else if (arg == "--threads") {
            applyOrDie(spec, "threads", next());
        } else if (arg == "--budget") {
            applyOrDie(spec, "budget", next());
        } else if (arg == "--interval") {
            applyOrDie(spec, "interval", next());
        } else if (arg == "--watchdog") {
            applyOrDie(spec, "watchdog", next());
        } else if (arg == "--monitor") {
            applyOrDie(spec, "monitor", next());
        } else if (arg == "--workers") {
            opts.workers =
                static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--retries") {
            // N retries = N+1 attempts.
            opts.maxAttempts =
                static_cast<unsigned>(std::atoi(next())) + 1;
        } else if (arg == "--timeout-ms") {
            opts.jobTimeout = std::chrono::milliseconds(
                std::strtoll(next(), nullptr, 10));
        } else if (arg == "--csv") {
            csv_path = next();
        } else if (arg == "--no-progress") {
            opts.progress = false;
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--dry-run") {
            dry_run = true;
        } else if (arg == "--list-workloads") {
            for (const auto &info : workloadRegistry())
                std::printf("%s\n", info.name.c_str());
            return 0;
        } else if (arg == "--list-treatments") {
            for (Treatment t : allTreatments())
                std::printf("%s\n", treatmentName(t));
            return 0;
        } else if (arg == "--list-fault-points") {
            for (const FaultPointInfo &info :
                 FaultInjector::allPoints()) {
                std::printf("%-26s %s\n", info.name, info.summary);
            }
            return 0;
        } else {
            usageError("unknown flag '" + arg + "'");
        }
    }

    // Worker-thread inform() lines would interleave with the CSV
    // (and with each other) nondeterministically; quiet by default.
    if (!verbose)
        setLogLevel(LogLevel::Quiet);

    std::vector<ConfigError> errors = spec.validate();
    if (!errors.empty()) {
        for (const ConfigError &e : errors) {
            std::fprintf(stderr, "tmi-sweep: %s: %s\n",
                         e.field.c_str(), e.message.c_str());
        }
        return 2;
    }

    if (dry_run) {
        // The expansion, one line per job, without running anything.
        for (const driver::Job &job : spec.expand()) {
            std::printf(
                "%llu %s %s scale=%llu period=%llu seed=%llu %s\n",
                static_cast<unsigned long long>(job.id),
                job.config.run.workload.c_str(),
                treatmentName(job.config.run.treatment),
                static_cast<unsigned long long>(job.config.run.scale),
                static_cast<unsigned long long>(
                    job.config.run.perfPeriod),
                static_cast<unsigned long long>(job.config.run.seed),
                job.scenario().c_str());
        }
        return 0;
    }

    std::ofstream csv_file;
    if (!csv_path.empty()) {
        csv_file.open(csv_path);
        if (!csv_file)
            usageError("cannot write '" + csv_path + "'");
    }
    std::ostream &os = csv_path.empty() ? std::cout : csv_file;
    // Progress uses \r; keep it off a terminal that is also
    // receiving the CSV.
    if (csv_path.empty())
        opts.progress = false;

    driver::SweepCsvSink sink(os);
    driver::Runner runner(opts);
    runner.run(spec, &sink);

    const driver::SweepStats &stats = runner.stats();
    std::fprintf(stderr,
                 "[sweep] %llu jobs: %llu ok, %llu failed, %llu "
                 "timed out, %llu cancelled; %llu retries; %.1fs\n",
                 static_cast<unsigned long long>(stats.total),
                 static_cast<unsigned long long>(stats.ok),
                 static_cast<unsigned long long>(stats.failed),
                 static_cast<unsigned long long>(stats.timedOut),
                 static_cast<unsigned long long>(stats.cancelled),
                 static_cast<unsigned long long>(stats.retries),
                 stats.wallSeconds);
    return stats.ok == stats.total ? 0 : 1;
}
