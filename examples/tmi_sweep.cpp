/**
 * @file
 * tmi-sweep: run a whole experiment matrix in one command.
 *
 * A sweep is a base configuration plus value lists for the evaluation
 * axes (workload x treatment x scale x period x fault-point x
 * fault-rate x seed). The matrix is expanded once, executed on a host
 * worker pool with retries and per-job timeouts, and streamed as the
 * canonical sweep CSV (schema: scripts/check_sweep.py) in job-id
 * order -- the CSV is byte-identical for any --workers value.
 *
 * Usage:
 *   tmi-sweep --workloads histogramfs,counterarray \
 *       --treatments pthreads,tmi-protect [--scales 2,4] \
 *       [--placements default,pack,arena,isolate] \
 *       [--periods 100,1000] [--seeds 1,2,3] \
 *       [--fault-points mem.frame_exhausted] \
 *       [--fault-rates 0,0.1,0.5] \
 *       [--threads N] [--budget N] [--param key=value]... \
 *       [--plan-in plan.txt] [--spec sweep.conf] \
 *       [--workers N] [--retries N] [--timeout-ms N] \
 *       [--csv out.csv] [--no-progress] [--dry-run] [--verbose] \
 *       [--journal-dir DIR] [--shards N] [--resume] \
 *       [--checkpoint-every K] [--kill-budget N] \
 *       [--family NAME] [--list-workloads] [--list-treatments] \
 *       [--list-fault-points]
 *
 * --plan-in loads a saved huron-static layout plan into the base
 * config: every huron-static cell replays it directly instead of
 * profiling first (other treatments ignore it).
 *
 * --spec reads the same keys from a key=value file (one per line,
 * #-comments); flags apply after the file, appending to axis lists.
 * A --workloads item of the form family:NAME expands to every
 * workload tagged with that family; --param appends one typed
 * workload knob (validated against each workload's schema).
 * --family NAME restricts --list-workloads to one family (give it
 * before --list-workloads; flags apply in order). CSV goes to stdout
 * unless --csv is given; progress and the summary go to stderr.
 *
 * --journal-dir turns on crash-safe orchestration: the matrix is
 * split over --shards worker *processes*, every result is journaled
 * before it counts, a crashing job is retried and then quarantined
 * (status=poisoned) instead of killing the campaign, and a killed
 * run continues with --resume -- the merged CSV is byte-identical
 * to an uninterrupted run. Exit status: 0 = every job ok, 1 = some
 * job failed, timed out or was quarantined, 2 = usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "driver/runner.hh"
#include "driver/supervisor.hh"
#include "workloads/workload.hh"

using namespace tmi;

namespace
{

[[noreturn]] void
usageError(const std::string &message)
{
    std::fprintf(stderr, "tmi-sweep: %s\n", message.c_str());
    std::exit(2);
}

void
applyOrDie(driver::SweepSpec &spec, const std::string &key,
           const std::string &value)
{
    std::string err;
    if (!driver::applySpecEntry(spec, key, value, err))
        usageError(err);
}

void
loadSpecFile(driver::SweepSpec &spec, const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        usageError("cannot read spec file '" + path + "'");
    std::ostringstream text;
    text << is.rdbuf();
    std::string err;
    if (!driver::parseSpecText(spec, text.str(), err))
        usageError(path + ": " + err);
}

} // namespace

int
main(int argc, char **argv)
{
    driver::SweepSpec spec;
    driver::RunnerOptions opts;
    opts.workers = 1;
    opts.progress = true;
    std::string csv_path;
    bool dry_run = false;
    bool verbose = false;
    std::string journal_dir;
    unsigned shards = 1;
    bool resume = false;
    unsigned kill_budget = 2;
    std::uint64_t checkpoint_every = 16;
    bool sharded_flags = false; //!< any orchestration flag given
    std::string family_filter;  //!< --family for --list-workloads

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usageError("'" + arg + "' needs a value");
            return argv[++i];
        };
        if (arg == "--spec") {
            loadSpecFile(spec, next());
        } else if (arg == "--workloads") {
            applyOrDie(spec, "workloads", next());
        } else if (arg == "--treatments") {
            applyOrDie(spec, "treatments", next());
        } else if (arg == "--placements") {
            applyOrDie(spec, "placements", next());
        } else if (arg == "--scales") {
            applyOrDie(spec, "scales", next());
        } else if (arg == "--periods") {
            applyOrDie(spec, "periods", next());
        } else if (arg == "--fault-points") {
            applyOrDie(spec, "fault_points", next());
        } else if (arg == "--fault-rates") {
            applyOrDie(spec, "fault_rates", next());
        } else if (arg == "--seeds") {
            applyOrDie(spec, "seeds", next());
        } else if (arg == "--threads") {
            applyOrDie(spec, "threads", next());
        } else if (arg == "--budget") {
            applyOrDie(spec, "budget", next());
        } else if (arg == "--param") {
            applyOrDie(spec, "param", next());
        } else if (arg == "--plan-in") {
            std::ifstream is(next());
            if (!is)
                usageError("cannot read plan file");
            std::ostringstream text;
            text << is.rdbuf();
            spec.base.run.planIn = text.str();
        } else if (arg == "--interval") {
            applyOrDie(spec, "interval", next());
        } else if (arg == "--watchdog") {
            applyOrDie(spec, "watchdog", next());
        } else if (arg == "--monitor") {
            applyOrDie(spec, "monitor", next());
        } else if (arg == "--workers") {
            opts.workers =
                static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--retries") {
            // N retries = N+1 attempts.
            opts.maxAttempts =
                static_cast<unsigned>(std::atoi(next())) + 1;
        } else if (arg == "--timeout-ms") {
            opts.jobTimeout = std::chrono::milliseconds(
                std::strtoll(next(), nullptr, 10));
        } else if (arg == "--csv") {
            csv_path = next();
        } else if (arg == "--journal-dir") {
            journal_dir = next();
        } else if (arg == "--shards") {
            shards = static_cast<unsigned>(std::atoi(next()));
            sharded_flags = true;
        } else if (arg == "--resume") {
            resume = true;
            sharded_flags = true;
        } else if (arg == "--checkpoint-every") {
            checkpoint_every = static_cast<std::uint64_t>(
                std::strtoull(next(), nullptr, 10));
            sharded_flags = true;
        } else if (arg == "--kill-budget") {
            kill_budget = static_cast<unsigned>(std::atoi(next()));
            sharded_flags = true;
        } else if (arg == "--no-progress") {
            opts.progress = false;
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--dry-run") {
            dry_run = true;
        } else if (arg == "--family") {
            family_filter = next();
        } else if (arg == "--list-workloads") {
            bool any = false;
            for (const auto &info : workloadRegistry()) {
                if (!family_filter.empty() &&
                    info.family != family_filter)
                    continue;
                any = true;
                std::printf("%-16s %s\n", info.name.c_str(),
                            info.family.c_str());
                for (const ParamSpec &p : info.schema.specs()) {
                    std::printf("    %-16s %-7s default=%-8s %s\n",
                                p.name.c_str(),
                                paramTypeName(p.type),
                                p.defaultText().c_str(),
                                p.desc.c_str());
                }
            }
            if (!any && !family_filter.empty()) {
                std::fprintf(stderr,
                             "tmi-sweep: no workloads in family "
                             "'%s' (known:",
                             family_filter.c_str());
                for (const std::string &f : workloadFamilies())
                    std::fprintf(stderr, " %s", f.c_str());
                std::fprintf(stderr, ")\n");
                return 2;
            }
            return 0;
        } else if (arg == "--list-treatments") {
            for (Treatment t : allTreatments()) {
                std::printf("%-18s %s\n", treatmentName(t),
                            treatmentDescription(t));
            }
            return 0;
        } else if (arg == "--list-fault-points") {
            for (const FaultPointInfo &info :
                 FaultInjector::allPoints()) {
                std::printf("%-26s %s\n", info.name, info.summary);
            }
            return 0;
        } else {
            usageError("unknown flag '" + arg + "'");
        }
    }

    // Worker-thread inform() lines would interleave with the CSV
    // (and with each other) nondeterministically; quiet by default.
    if (!verbose)
        setLogLevel(LogLevel::Quiet);

    std::vector<ConfigError> errors = spec.validate();
    if (!errors.empty()) {
        for (const ConfigError &e : errors) {
            std::fprintf(stderr, "tmi-sweep: %s: %s\n",
                         e.field.c_str(), e.message.c_str());
        }
        return 2;
    }

    if (dry_run) {
        // The expansion, one line per job, without running anything.
        for (const driver::Job &job : spec.expand()) {
            std::printf(
                "%llu %s %s scale=%llu period=%llu seed=%llu %s\n",
                static_cast<unsigned long long>(job.id),
                job.config.run.workload.c_str(),
                treatmentName(job.config.run.treatment),
                static_cast<unsigned long long>(job.config.run.scale),
                static_cast<unsigned long long>(
                    job.config.run.perfPeriod),
                static_cast<unsigned long long>(job.config.run.seed),
                job.scenario().c_str());
        }
        return 0;
    }

    if (sharded_flags && journal_dir.empty()) {
        usageError("--shards/--resume/--checkpoint-every/"
                   "--kill-budget need --journal-dir");
    }

    // The path sink owns its FILE and fsyncs on checkpoint
    // boundaries: a killed orchestrator never leaves a torn row.
    std::unique_ptr<driver::SweepCsvSink> sink;
    if (!csv_path.empty()) {
        sink = std::make_unique<driver::SweepCsvSink>(
            csv_path, checkpoint_every);
        if (!sink->ok())
            usageError("cannot write '" + csv_path + "'");
    } else {
        // Progress uses \r; keep it off a terminal that is also
        // receiving the CSV.
        opts.progress = false;
        sink = std::make_unique<driver::SweepCsvSink>(std::cout);
    }

    driver::SweepStats stats;
    std::uint64_t crashes = 0, resumed = 0;
    if (!journal_dir.empty()) {
        driver::ShardOptions shard_opts;
        shard_opts.shards = shards;
        shard_opts.journalDir = journal_dir;
        shard_opts.resume = resume;
        shard_opts.killBudget = kill_budget;
        shard_opts.checkpointEvery = checkpoint_every;
        shard_opts.runner = opts;
        shard_opts.runner.progress = false; // children share stderr
        driver::ShardSupervisor supervisor(std::move(shard_opts));
        driver::ShardRunStats shard_stats;
        try {
            shard_stats = supervisor.run(spec.expand(), sink.get());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "tmi-sweep: %s\n", e.what());
            return 2;
        }
        stats = shard_stats.sweep;
        crashes = shard_stats.crashes;
        resumed = shard_stats.resumedJobs;
        std::fprintf(
            stderr,
            "[sweep] %llu shard(s): %llu crash(es), %llu respawn(s),"
            " %llu job(s) resumed from journals\n",
            static_cast<unsigned long long>(shard_stats.shards),
            static_cast<unsigned long long>(crashes),
            static_cast<unsigned long long>(shard_stats.respawns),
            static_cast<unsigned long long>(resumed));
    } else {
        driver::Runner runner(opts);
        runner.run(spec, sink.get());
        stats = runner.stats();
    }
    sink->sync();

    std::fprintf(
        stderr,
        "[sweep] %llu jobs: %llu ok, %llu failed, %llu "
        "timed out, %llu cancelled, %llu poisoned; %llu retries; "
        "%.1fs\n",
        static_cast<unsigned long long>(stats.total),
        static_cast<unsigned long long>(stats.ok),
        static_cast<unsigned long long>(stats.failed),
        static_cast<unsigned long long>(stats.timedOut),
        static_cast<unsigned long long>(stats.cancelled),
        static_cast<unsigned long long>(stats.poisoned),
        static_cast<unsigned long long>(stats.retries),
        stats.wallSeconds);
    if (stats.ok != stats.total) {
        std::fprintf(
            stderr,
            "[sweep] FAILED: %llu of %llu job(s) did not finish ok"
            " (%llu quarantined as poison, %llu worker crash(es))\n",
            static_cast<unsigned long long>(stats.total - stats.ok),
            static_cast<unsigned long long>(stats.total),
            static_cast<unsigned long long>(stats.poisoned),
            static_cast<unsigned long long>(crashes));
        return 1;
    }
    return 0;
}
