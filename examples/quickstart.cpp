/**
 * @file
 * Quickstart: detect and repair false sharing in one workload.
 *
 * Runs Phoenix histogram (FS-accentuating input) three ways --
 * plain pthreads, full Tmi, and the manual source fix -- and prints
 * what Tmi's detector saw and how much of the manual speedup the
 * online repair recovered.
 *
 * Usage: quickstart [workload] [threads] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/config.hh"

using namespace tmi;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "histogramfs";
    unsigned threads = argc > 2 ? std::atoi(argv[2]) : 4;
    std::uint64_t scale = argc > 3 ? std::atoll(argv[3]) : 2;

    ExperimentBuilder cell = Experiment::builder()
                                 .workload(workload)
                                 .threads(threads)
                                 .scale(scale);
    auto run = [&cell](Treatment t) {
        ExperimentBuilder b = cell;
        return b.treatment(t).run();
    };

    std::printf("== quickstart: %s, %u threads, scale %llu ==\n",
                workload.c_str(), threads,
                static_cast<unsigned long long>(scale));

    RunResult base = run(Treatment::Pthreads);
    std::printf("pthreads    : %8.3f ms   HITM events %10llu   %s\n",
                base.seconds * 1e3,
                static_cast<unsigned long long>(base.hitmEvents),
                base.compatible ? "ok" : "FAILED");

    RunResult repaired = run(Treatment::TmiProtect);
    std::printf("tmi-protect : %8.3f ms   HITM events %10llu   %s\n",
                repaired.seconds * 1e3,
                static_cast<unsigned long long>(repaired.hitmEvents),
                repaired.compatible ? "ok" : "FAILED");
    std::printf("  repair %s; %llu pages protected; %llu commits; "
                "T2P %.0f us; FS rate %.0f ev/s\n",
                repaired.repairActive ? "engaged" : "not engaged",
                static_cast<unsigned long long>(repaired.pagesProtected),
                static_cast<unsigned long long>(repaired.commits),
                repaired.t2pCycles / 3.4e3,
                repaired.fsEventsEstimated /
                    (repaired.seconds > 0 ? repaired.seconds : 1));

    RunResult manual = run(Treatment::Manual);
    std::printf("manual fix  : %8.3f ms\n", manual.seconds * 1e3);

    double tmi_speedup = speedup(base, repaired);
    double manual_speedup = speedup(base, manual);
    std::printf("\nspeedup: tmi %.2fx, manual %.2fx -> tmi captures "
                "%.0f%% of the manual fix\n",
                tmi_speedup, manual_speedup,
                manual_speedup > 1
                    ? 100.0 * (tmi_speedup - 1) / (manual_speedup - 1)
                    : 0.0);
    return repaired.compatible && base.compatible ? 0 : 1;
}
