/**
 * @file
 * Shared helpers for the figure/table reproduction drivers.
 *
 * Each bench binary regenerates one table or figure from the paper:
 * it runs the relevant (workload x treatment) cells through the
 * experiment driver and prints the same rows/series the paper
 * reports, alongside the paper's numbers where useful. Absolute
 * values differ from the paper's Haswell testbed -- the shape is
 * what is reproduced (see EXPERIMENTS.md).
 */

#ifndef TMI_BENCH_BENCH_UTIL_HH
#define TMI_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/experiment.hh"
#include "driver/runner.hh"
#include "workloads/workload.hh"

namespace tmi::bench
{

/** Scale factor for bench runs (env TMI_BENCH_SCALE overrides). */
inline std::uint64_t
benchScale(std::uint64_t fallback = 4)
{
    if (const char *env = std::getenv("TMI_BENCH_SCALE"))
        return std::strtoull(env, nullptr, 10);
    return fallback;
}

/** Default experiment config for bench runs. */
inline ExperimentConfig
benchConfig(const std::string &workload, Treatment treatment,
            std::uint64_t scale)
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.treatment = treatment;
    cfg.threads = 4;
    cfg.scale = scale;
    cfg.analysisInterval = 500'000;
    cfg.budget = 60'000'000'000ULL;
    return cfg;
}

/** The same defaults as a fluent builder; drivers chain their
 *  per-figure knobs on top (.perfPeriod(...), .fault(...), ...). */
inline ExperimentBuilder
benchBuilder(const std::string &workload, Treatment treatment,
             std::uint64_t scale)
{
    Config base;
    base.run = benchConfig(workload, treatment, scale);
    return Experiment::builder(base);
}

/** All workloads in the Figure 7/8/10 overhead set, paper order. */
inline std::vector<std::string>
overheadSet()
{
    std::vector<std::string> names;
    for (const auto &info : workloadRegistry()) {
        if (info.inOverheadSet)
            names.push_back(info.name);
    }
    return names;
}

/** The Figure 9 / Table 3 false sharing set, paper order. */
inline std::vector<std::string>
falseSharingSet()
{
    std::vector<std::string> names;
    for (const auto &info : workloadRegistry()) {
        if (info.knownFalseSharing)
            names.push_back(info.name);
    }
    return names;
}

/** Outcome as a short string for tables. */
inline const char *
outcomeStr(const RunResult &res)
{
    if (res.compatible)
        return "ok";
    switch (res.outcome) {
      case RunOutcome::Timeout:
        return "HANG";
      case RunOutcome::Deadlock:
        return "DEADLOCK";
      case RunOutcome::Completed:
        return "WRONG";
    }
    return "?";
}

/** Geometric mean of a nonempty vector. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Print a separator + header for a bench section. */
inline void
header(const char *title)
{
    std::printf("\n==== %s ====\n", title);
}

/**
 * Optional machine-readable sink next to the human tables: when the
 * TMI_BENCH_CSV env var names a file, every row() lands there too.
 * Silently inert otherwise, so drivers call it unconditionally.
 */
class CsvSink
{
  public:
    explicit CsvSink(const char *header_line)
    {
        if (const char *path = std::getenv("TMI_BENCH_CSV")) {
            _f = std::fopen(path, "w");
            if (_f)
                std::fprintf(_f, "%s\n", header_line);
        }
    }

    ~CsvSink()
    {
        if (_f)
            std::fclose(_f);
    }

    CsvSink(const CsvSink &) = delete;
    CsvSink &operator=(const CsvSink &) = delete;

    explicit operator bool() const { return _f != nullptr; }

    void
    row(const char *fmt, ...)
    {
        if (!_f)
            return;
        va_list args;
        va_start(args, fmt);
        std::vfprintf(_f, fmt, args);
        va_end(args);
        std::fputc('\n', _f);
    }

  private:
    std::FILE *_f = nullptr;
};

/** A pthreads baseline plus treated runs for one workload. */
struct TreatmentRow
{
    RunResult base;
    std::vector<RunResult> treated; //!< parallel to the request
};

/**
 * Run the pthreads baseline, then each treatment, from one base
 * builder (the treatment on @p base is overwritten per run).
 * Sheriff treatments can be pathologically slow or hang outright, so
 * they get a budget of base cycles x @p sheriff_budget_factor
 * instead of the default; extra knobs go through @p tweak.
 */
inline TreatmentRow
runTreatmentRow(const ExperimentBuilder &base,
                const std::vector<Treatment> &treatments,
                Cycles sheriff_budget_factor = 25,
                const std::function<void(ExperimentBuilder &)> &tweak =
                    {})
{
    TreatmentRow row;
    ExperimentBuilder base_b = base;
    base_b.treatment(Treatment::Pthreads);
    if (tweak)
        tweak(base_b);
    row.base = base_b.run();
    for (Treatment t : treatments) {
        ExperimentBuilder b = base;
        b.treatment(t);
        if (t == Treatment::SheriffDetect ||
            t == Treatment::SheriffProtect) {
            b.budget(row.base.cycles * sheriff_budget_factor);
        }
        if (tweak)
            tweak(b);
        row.treated.push_back(b.run());
    }
    return row;
}

/** Sweep workers for bench runs (env TMI_BENCH_WORKERS overrides).
 *  Defaults to 1: serial, and therefore bit-for-bit the historical
 *  bench output order. The sweep driver delivers results in job-id
 *  order either way, so raising it only changes wall-clock time. */
inline unsigned
benchWorkers()
{
    if (const char *env = std::getenv("TMI_BENCH_WORKERS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    return 1;
}

/**
 * The whole-figure variant of runTreatmentRow: every (workload x
 * treatment) cell as one job matrix through the sweep driver, with
 * TMI_BENCH_WORKERS host threads. Runs in two phases because the
 * sheriff budget is derived from each workload's measured pthreads
 * baseline: phase 1 is all baselines, phase 2 all treated cells.
 * Row i corresponds to workloads[i]; treated[j] to treatments[j].
 */
inline std::vector<TreatmentRow>
runTreatmentMatrix(const std::vector<std::string> &workloads,
                   const std::vector<Treatment> &treatments,
                   std::uint64_t scale,
                   Cycles sheriff_budget_factor = 25,
                   const std::function<void(ExperimentBuilder &)> &tweak =
                       {})
{
    driver::RunnerOptions opts;
    opts.workers = benchWorkers();
    driver::Runner runner(opts);

    auto cell = [&](const std::string &workload, Treatment t,
                    Cycles budget) {
        ExperimentBuilder b = benchBuilder(workload, t, scale);
        if (budget)
            b.budget(budget);
        if (tweak)
            tweak(b);
        driver::Job job;
        job.config = b.peek();
        return job;
    };

    std::vector<driver::Job> base_jobs;
    for (const std::string &w : workloads)
        base_jobs.push_back(cell(w, Treatment::Pthreads, 0));
    std::vector<driver::JobResult> bases =
        runner.run(std::move(base_jobs));

    std::vector<driver::Job> treated_jobs;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        for (Treatment t : treatments) {
            Cycles budget = 0;
            if (t == Treatment::SheriffDetect ||
                t == Treatment::SheriffProtect) {
                budget = bases[i].run.cycles * sheriff_budget_factor;
            }
            treated_jobs.push_back(cell(workloads[i], t, budget));
        }
    }
    std::vector<driver::JobResult> treated =
        runner.run(std::move(treated_jobs));

    std::vector<TreatmentRow> rows(workloads.size());
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        rows[i].base = bases[i].run;
        for (std::size_t j = 0; j < treatments.size(); ++j)
            rows[i].treated.push_back(
                treated[i * treatments.size() + j].run);
    }
    return rows;
}

} // namespace tmi::bench

#endif // TMI_BENCH_BENCH_UTIL_HH
