/**
 * @file
 * Shared helpers for the figure/table reproduction drivers.
 *
 * Each bench binary regenerates one table or figure from the paper:
 * it runs the relevant (workload x treatment) cells through the
 * experiment driver and prints the same rows/series the paper
 * reports, alongside the paper's numbers where useful. Absolute
 * values differ from the paper's Haswell testbed -- the shape is
 * what is reproduced (see EXPERIMENTS.md).
 */

#ifndef TMI_BENCH_BENCH_UTIL_HH
#define TMI_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "workloads/workload.hh"

namespace tmi::bench
{

/** Scale factor for bench runs (env TMI_BENCH_SCALE overrides). */
inline std::uint64_t
benchScale(std::uint64_t fallback = 4)
{
    if (const char *env = std::getenv("TMI_BENCH_SCALE"))
        return std::strtoull(env, nullptr, 10);
    return fallback;
}

/** Default experiment config for bench runs. */
inline ExperimentConfig
benchConfig(const std::string &workload, Treatment treatment,
            std::uint64_t scale)
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.treatment = treatment;
    cfg.threads = 4;
    cfg.scale = scale;
    cfg.analysisInterval = 500'000;
    cfg.budget = 60'000'000'000ULL;
    return cfg;
}

/** All workloads in the Figure 7/8/10 overhead set, paper order. */
inline std::vector<std::string>
overheadSet()
{
    std::vector<std::string> names;
    for (const auto &info : workloadRegistry()) {
        if (info.inOverheadSet)
            names.push_back(info.name);
    }
    return names;
}

/** The Figure 9 / Table 3 false sharing set, paper order. */
inline std::vector<std::string>
falseSharingSet()
{
    std::vector<std::string> names;
    for (const auto &info : workloadRegistry()) {
        if (info.knownFalseSharing)
            names.push_back(info.name);
    }
    return names;
}

/** Outcome as a short string for tables. */
inline const char *
outcomeStr(const RunResult &res)
{
    if (res.compatible)
        return "ok";
    switch (res.outcome) {
      case RunOutcome::Timeout:
        return "HANG";
      case RunOutcome::Deadlock:
        return "DEADLOCK";
      case RunOutcome::Completed:
        return "WRONG";
    }
    return "?";
}

/** Geometric mean of a nonempty vector. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Print a separator + header for a bench section. */
inline void
header(const char *title)
{
    std::printf("\n==== %s ====\n", title);
}

} // namespace tmi::bench

#endif // TMI_BENCH_BENCH_UTIL_HH
