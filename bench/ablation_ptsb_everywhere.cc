/**
 * @file
 * Section 4.3 ablation: targeted page protection versus protecting
 * all of program memory (PTSB-everywhere), with code-centric
 * consistency enabled in both.
 *
 * Paper: histogram flips from a 29% speedup to a 36% slowdown under
 * PTSB-everywhere; histogramfs drops from 6.27x to 3.26x. The tax is
 * twinning/diffing pages that never false-share.
 */

#include "bench_util.hh"

using namespace tmi;
using namespace tmi::bench;

int
main()
{
    std::uint64_t scale = benchScale(8);
    header("Ablation: targeted repair vs PTSB-everywhere");
    std::printf("%-16s %10s %12s %14s %12s\n", "workload", "targeted",
                "everywhere", "pages(t/e)", "paper");

    struct Row
    {
        const char *name;
        const char *paper;
    };
    const Row rows[] = {
        {"histogram", "1.29x vs 0.74x"},
        {"histogramfs", "6.27x vs 3.26x"},
        {"lreg", "unchanged"},
        {"stringmatch", "unchanged"},
    };

    for (const auto &row : rows) {
        ExperimentConfig cfg =
            benchConfig(row.name, Treatment::Pthreads, scale);
        RunResult base = runExperiment(cfg);
        cfg.treatment = Treatment::TmiProtect;
        RunResult targeted = runExperiment(cfg);
        cfg.treatment = Treatment::PtsbEverywhere;
        RunResult everywhere = runExperiment(cfg);

        std::printf("%-16s %9.2fx %11.2fx %8llu/%-5llu %12s\n",
                    row.name, speedup(base, targeted),
                    speedup(base, everywhere),
                    static_cast<unsigned long long>(
                        targeted.pagesProtected),
                    static_cast<unsigned long long>(
                        everywhere.pagesProtected),
                    row.paper);
    }
    return 0;
}
