/**
 * @file
 * Figure 8: memory usage of pthreads vs full Tmi across all 35
 * workloads (MB, log scale in the paper).
 *
 * Paper shape: small-footprint apps (Phoenix, some Splash2) are
 * dominated by a ~90 MB fixed cost (perf event rings + detector
 * structures); large apps pay about 19% over baseline; lock-heavy
 * apps (fluidanimate, water-spatial) pay extra for process-shared
 * lock redirection.
 */

#include "bench_util.hh"

using namespace tmi;
using namespace tmi::bench;

int
main()
{
    std::uint64_t scale = benchScale(3);
    header("Figure 8: memory usage (MB)");
    std::printf("%-16s %12s %12s %10s\n", "workload", "pthreads",
                "tmi-full", "ratio");

    const double mb = 1024.0 * 1024.0;
    // The modeled fixed cost: per-thread perf rings (threads + main).
    const double fixed_mb = 16.0 * 5;
    std::vector<double> small_overheads, large_ratios, large_var;
    for (const auto &name : overheadSet()) {
        RunResult base = runExperiment(
            benchConfig(name, Treatment::Pthreads, scale));
        RunResult tmi = runExperiment(
            benchConfig(name, Treatment::TmiDetect, scale));

        double base_mb = base.appBytesPeak / mb;
        double tmi_mb =
            (tmi.appBytesPeak + tmi.overheadBytes) / mb;
        if (base_mb >= 8.0) {
            large_ratios.push_back(tmi_mb / base_mb);
            large_var.push_back(
                (tmi_mb - fixed_mb) / base_mb);
        } else {
            small_overheads.push_back(tmi_mb - base_mb);
        }
        std::printf("%-16s %12.1f %12.1f %9.2fx\n", name.c_str(),
                    base_mb, tmi_mb, tmi_mb / base_mb);
    }
    double small_mean = 0;
    for (double v : small_overheads)
        small_mean += v;
    if (!small_overheads.empty())
        small_mean /= small_overheads.size();
    std::printf("\nsmall apps (<8 MB): +%.0f MB fixed overhead "
                "(paper: ~90 MB for perf buffers +\ndetector). "
                "large apps: %.2fx total; %.2fx excluding the fixed "
                "ring model\n(paper: ~1.19x -- our scaled-down "
                "'large' inputs are 10-30 MB, so the fixed\ncost "
                "dominates where the paper's GB-scale inputs "
                "amortize it)\n",
                small_mean,
                large_ratios.empty() ? 0.0 : geomean(large_ratios),
                large_var.empty() ? 0.0 : geomean(large_var));
    return 0;
}
