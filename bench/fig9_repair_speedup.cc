/**
 * @file
 * Figure 9: speedup over pthreads for the workloads where Tmi
 * repairs false sharing, compared against the manual source fix,
 * sheriff-protect, and LASER.
 *
 * Paper headline: Tmi averages 5.2x and captures 88% of the manual
 * speedup; Sheriff is close to manual where it works but fails on
 * lu-ncb, leveldb and shptr-relaxed; LASER captures only ~24%;
 * shptr-lock is the pathological case at 1.04x.
 */

#include "bench_util.hh"

using namespace tmi;
using namespace tmi::bench;

int
main()
{
    std::uint64_t scale = benchScale(8);
    header("Figure 9: repair speedup over pthreads");
    std::printf("%-16s %8s %10s %8s %8s   %s\n", "workload", "manual",
                "sheriff", "laser", "tmi", "notes");

    CsvSink csv("workload,manual,sheriff,laser,tmi");
    std::vector<double> tmi_speedups, capture;
    std::vector<std::string> names = falseSharingSet();
    // One sweep-driver job matrix instead of a serial loop; set
    // TMI_BENCH_WORKERS to parallelize (output order is fixed).
    std::vector<TreatmentRow> rows = runTreatmentMatrix(
        names,
        {Treatment::Manual, Treatment::SheriffProtect,
         Treatment::Laser, Treatment::TmiProtect},
        scale);
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const TreatmentRow &row = rows[i];
        const RunResult &base = row.base;
        const RunResult &manual = row.treated[0];
        const RunResult &sheriff = row.treated[1];
        const RunResult &laser = row.treated[2];
        const RunResult &tmi = row.treated[3];

        double m = speedup(base, manual);
        double s = sheriff.compatible ? speedup(base, sheriff) : 0.0;
        double l = laser.compatible ? speedup(base, laser) : 0.0;
        double t = tmi.compatible ? speedup(base, tmi) : 0.0;
        tmi_speedups.push_back(t);
        if (m > 1.0)
            capture.push_back((t - 1.0) / (m - 1.0));

        std::printf("%-16s %7.2fx %9.2fx %7.2fx %7.2fx   %s%s\n",
                    name.c_str(), m, s, l, t,
                    sheriff.compatible ? "" : "sheriff-incompatible ",
                    laser.repairActive ? "" : "laser-no-repair");
        csv.row("%s,%.4f,%.4f,%.4f,%.4f", name.c_str(), m, s, l, t);
    }

    double mean_t = 0;
    for (double t : tmi_speedups)
        mean_t += t;
    mean_t /= tmi_speedups.size();
    double mean_c = 0;
    for (double c : capture)
        mean_c += c;
    mean_c /= capture.empty() ? 1 : capture.size();

    std::printf("\ntmi mean speedup %.2fx (paper: 5.2x); capture of "
                "manual fix %.0f%% (paper: 88%%)\n",
                mean_t, 100.0 * mean_c);
    return 0;
}
