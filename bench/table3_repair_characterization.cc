/**
 * @file
 * Table 3: characterization of Tmi's false sharing repair -- the
 * unrepaired prefix, the thread-to-process conversion time, and the
 * PTSB commit rate for each repaired application.
 *
 * Paper: T2P under 200 us everywhere; commits/s spans 0.38-34 with
 * shptr-lock the extreme (every lock op flushes).
 */

#include "bench_util.hh"

using namespace tmi;
using namespace tmi::bench;

int
main()
{
    std::uint64_t scale = benchScale(8);
    header("Table 3: characterization of Tmi's repair");
    std::printf("%-16s %14s %10s %12s %10s\n", "app",
                "unrepaired(ms)", "T2P(us)", "commits", "commits/s");

    for (const auto &name : falseSharingSet()) {
        ExperimentConfig cfg =
            benchConfig(name, Treatment::TmiProtect, scale);
        RunResult res = runExperiment(cfg);
        if (!res.repairActive) {
            std::printf("%-16s %14s %10s %12s %10s\n", name.c_str(),
                        "-", "-", "-",
                        "(no repair needed)");
            continue;
        }
        std::printf("%-16s %14.3f %10.1f %12llu %10.0f\n",
                    name.c_str(), res.repairStartCycles / 3.4e6,
                    res.t2pCycles / 3.4e3,
                    static_cast<unsigned long long>(res.commits),
                    res.commits / res.seconds);
    }
    std::printf("\npaper shape: T2P < 200 us for all apps; lu-ncb is "
                "repaired by the allocator alone;\nshptr-lock "
                "commits at every lock operation.\n");
    return 0;
}
