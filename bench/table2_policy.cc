/**
 * @file
 * Table 2: semantics of concurrent conflicting accesses between code
 * regions, and the cells where Tmi permits PTSB use.
 *
 * This is a correctness artifact rather than a measurement: the
 * matrix is queried straight from the consistency engine the runtime
 * actually uses (the same one the gtest suite verifies).
 */

#include <cstdio>

#include "consistency/ccc.hh"

using namespace tmi;

namespace
{

const char *
semName(InteractionSemantics s)
{
    switch (s) {
      case InteractionSemantics::Undefined:
        return "undefined";
      case InteractionSemantics::Atomic:
        return "atomic";
      case InteractionSemantics::Unknown:
        return "unknown";
      case InteractionSemantics::Tso:
        return "TSO";
    }
    return "?";
}

} // namespace

int
main()
{
    const RegionKind kinds[] = {RegionKind::Regular, RegionKind::Atomic,
                                RegionKind::Asm};

    std::printf("==== Table 2: cross-region conflict semantics ====\n");
    std::printf("%-10s", "");
    for (RegionKind col : kinds)
        std::printf(" %-22s", regionName(col));
    std::printf("\n");

    for (RegionKind row : kinds) {
        std::printf("%-10s", regionName(row));
        for (RegionKind col : kinds) {
            char cell[64];
            std::snprintf(cell, sizeof(cell), "%d: %s%s",
                          interactionCase(row, col),
                          semName(interactionSemantics(row, col)),
                          ptsbPermitted(row, col) ? " [PTSB]" : "");
            std::printf(" %-22s", cell);
        }
        std::printf("\n");
    }
    std::printf("\n[PTSB] marks the shaded cells of the paper's "
                "Table 2: only undefined-semantics\nconflicts "
                "(C/C++ data races) permit page-twinning store "
                "buffers.\n");
    return 0;
}
