/**
 * @file
 * Figure 11 case study: canneal's atomic element swaps under a PTSB.
 *
 * Without code-centric consistency the claim CAS operates on private
 * page copies; the diff/merge replicates one element and loses
 * another (netlist.cpp:84 in the paper). With it, the asm-region
 * atomics run on shared memory and the multiset is preserved.
 */

#include "bench_util.hh"

using namespace tmi;
using namespace tmi::bench;

int
main()
{
    header("Figure 11: canneal atomic swaps vs the PTSB");
    std::printf("%-24s %10s %10s %12s %12s\n", "treatment", "result",
                "time(ms)", "repaired", "racy bytes");

    const Treatment treatments[] = {
        Treatment::Pthreads,
        Treatment::TmiProtect,
        Treatment::PtsbEverywhere,
        Treatment::TmiProtectNoCcc,
        Treatment::SheriffProtect,
        Treatment::Laser,
    };
    for (Treatment t : treatments) {
        ExperimentConfig cfg = benchConfig("canneal", t, 2);
        cfg.repairThreshold = 1.0; // force the PTSB onto its pages
        cfg.budget = 2'000'000'000ULL;
        RunResult res = runExperiment(cfg);
        std::printf("%-24s %10s %10.3f %12s %12llu\n",
                    treatmentName(t), outcomeStr(res),
                    res.seconds * 1e3,
                    res.repairActive ? "yes" : "no",
                    static_cast<unsigned long long>(
                        res.conflictBytes));
    }
    std::printf("\npaper: sheriff-detect causes canneal to produce "
                "an incorrect result; Tmi performs\ndetection and "
                "repair without corrupting it. Sheriff's always-on "
                "PTSB races canneal's\natomic claims (WRONG result, "
                "racy-merge bytes); Tmi's targeted repair never even\n"
                "engages here (the netlist is too diffuse), and with "
                "ptsb-everywhere forced on,\ncode-centric consistency "
                "keeps the asm-region atomics on shared memory.\n");
    return 0;
}
