/**
 * @file
 * Figure 12 case study: cholesky's volatile-flag synchronization
 * under a PTSB (simplified from mf.C:135-156 in the paper).
 *
 * Without code-centric consistency the writer's flag store is
 * buffered in its private copy (and the spinning reader holds a
 * stale private copy), so the loop never exits. With it, the
 * volatile accesses are treated as an assembly region and the
 * program terminates.
 */

#include "bench_util.hh"

using namespace tmi;
using namespace tmi::bench;

int
main()
{
    header("Figure 12: cholesky volatile-flag loop vs the PTSB");
    std::printf("%-24s %10s %10s\n", "treatment", "result",
                "time(ms)");

    const Treatment treatments[] = {
        Treatment::Pthreads,
        Treatment::TmiProtect,
        Treatment::TmiProtectNoCcc,
        Treatment::SheriffProtect,
        Treatment::SheriffDetect,
    };
    for (Treatment t : treatments) {
        ExperimentConfig cfg = benchConfig("cholesky", t, 2);
        cfg.repairThreshold = 1.0;
        cfg.analysisInterval = 300'000;
        cfg.budget = 1'500'000'000ULL;
        RunResult res = runExperiment(cfg);
        std::printf("%-24s %10s %10.3f\n", treatmentName(t),
                    outcomeStr(res), res.seconds * 1e3);
    }
    std::printf("\npaper: sheriff-detect and sheriff-protect hang on "
                "cholesky; Tmi's code-centric\nconsistency provides "
                "the SC semantics the programmer intended.\n");
    return 0;
}
