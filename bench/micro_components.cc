/**
 * @file
 * Component microbenchmarks (google-benchmark): host-side throughput
 * of the substrates every experiment leans on. These are regression
 * guards for the simulator itself, not paper figures.
 */

#include <benchmark/benchmark.h>

#include "cache/cache_sim.hh"
#include "detect/detector.hh"
#include "mem/mmu.hh"
#include "ptsb/ptsb.hh"
#include "sched/scheduler.hh"

namespace tmi
{

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    CacheSim cache;
    AccessContext ctx;
    ctx.pc = 0x400000;
    ctx.width = 8;
    std::uint64_t i = 0;
    for (auto _ : state) {
        ctx.core = i & 3;
        ctx.paddr = (i * 64) & 0xfffff;
        ctx.isWrite = i & 1;
        benchmark::DoNotOptimize(cache.access(ctx));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_CacheFalseSharingPingPong(benchmark::State &state)
{
    CacheSim cache;
    AccessContext ctx;
    ctx.pc = 0x400000;
    ctx.width = 8;
    ctx.paddr = 0x1000;
    ctx.isWrite = true;
    std::uint64_t i = 0;
    for (auto _ : state) {
        ctx.core = i++ & 1;
        benchmark::DoNotOptimize(cache.access(ctx));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheFalseSharingPingPong);

void
BM_MmuTranslate(benchmark::State &state)
{
    Mmu mmu(smallPageShift);
    ShmRegion region("bench", mmu.phys());
    region.grow(256);
    ProcessId pid = mmu.createAddressSpace();
    mmu.mapShared(pid, 0x10000000, region, 0, 256);
    std::uint64_t i = 0;
    for (auto _ : state) {
        Addr va = 0x10000000 + ((i * 4096 + i * 8) % (256 * 4096));
        benchmark::DoNotOptimize(mmu.translate(pid, va, i & 1));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MmuTranslate);

void
BM_PtsbCommitDirtyPage(benchmark::State &state)
{
    Mmu mmu(smallPageShift);
    ShmRegion region("bench", mmu.phys());
    region.grow(4);
    ProcessId pid = mmu.createAddressSpace();
    mmu.mapShared(pid, 0x10000000, region, 0, 4);
    Ptsb ptsb(mmu, pid);
    mmu.setCowCallback([&](ProcessId, VPage vpage, PPage shared,
                           PPage priv) -> CowOutcome {
        return ptsb.onCowFault(vpage, shared, priv);
    });
    ptsb.protectPage(0x10000000 >> smallPageShift);
    std::uint64_t v = 0;
    for (auto _ : state) {
        mmu.write(pid, 0x10000000 + (v % 512) * 8, &v, 8);
        benchmark::DoNotOptimize(ptsb.commit());
        ++v;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PtsbCommitDirtyPage);

void
BM_DetectorConsume(benchmark::State &state)
{
    InstructionTable instrs;
    Addr pc = instrs.define("bench.store", MemKind::Store, 4);
    AddressMap map;
    map.add(0x10000000, 1 << 20, RangeKind::AppHeap, "heap");
    Detector det(instrs, map, DetectorConfig{});
    PebsRecord rec;
    rec.pc = pc;
    std::uint64_t i = 0;
    for (auto _ : state) {
        rec.tid = i & 3;
        rec.vaddr = 0x10000000 + (i % 64) * 8;
        benchmark::DoNotOptimize(det.consume(rec));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorConsume);

void
BM_SchedulerContextSwitch(benchmark::State &state)
{
    // Measures fiber round-trips: two threads yielding to each other
    // for a fixed count, re-created per batch.
    for (auto _ : state) {
        state.PauseTiming();
        SimScheduler sched(1);
        constexpr int rounds = 2000;
        for (int t = 0; t < 2; ++t) {
            sched.spawn("t", [&sched] {
                for (int i = 0; i < rounds; ++i)
                    sched.advance(10);
            });
        }
        state.ResumeTiming();
        sched.run();
    }
    state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_SchedulerContextSwitch)->Unit(benchmark::kMicrosecond);

} // namespace

} // namespace tmi

BENCHMARK_MAIN();
