/**
 * @file
 * Figure 7: runtime overhead of Tmi's allocator and false sharing
 * detection across all 35 workloads, normalized to pthreads with the
 * Lockless allocator, with sheriff-detect for comparison.
 *
 * Paper: tmi-detect averages 2% overhead (max 17% on kmeans);
 * sheriff-detect is far heavier and incompatible with most of the
 * suite (it runs with 11 of 35 workloads).
 */

#include "bench_util.hh"

using namespace tmi;
using namespace tmi::bench;

int
main()
{
    std::uint64_t scale = benchScale(3);
    header("Figure 7: detection overhead (normalized to pthreads)");
    std::printf("%-16s %10s %10s %10s %14s\n", "workload",
                "tmi-alloc", "tmi-detect", "sheriff", "sheriff-state");

    CsvSink csv("workload,tmi_alloc,tmi_detect,sheriff,sheriff_state");
    std::vector<double> alloc_over, detect_over, detect_over_clean;
    unsigned sheriff_ok = 0;
    std::vector<std::string> names = overheadSet();
    // All (workload x treatment) cells through the sweep driver;
    // TMI_BENCH_WORKERS parallelizes, output order is fixed.
    std::vector<TreatmentRow> rows = runTreatmentMatrix(
        names,
        {Treatment::TmiAlloc, Treatment::TmiDetect,
         Treatment::SheriffDetect},
        scale);
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        bool has_fs = findWorkload(name).knownFalseSharing;
        const TreatmentRow &row = rows[i];
        const RunResult &base = row.base;
        const RunResult &alloc = row.treated[0];
        const RunResult &detect = row.treated[1];
        const RunResult &sheriff = row.treated[2];

        double a = static_cast<double>(alloc.cycles) / base.cycles;
        double d = static_cast<double>(detect.cycles) / base.cycles;
        double s = static_cast<double>(sheriff.cycles) / base.cycles;
        alloc_over.push_back(a);
        detect_over.push_back(d);
        if (!has_fs)
            detect_over_clean.push_back(d);
        sheriff_ok += sheriff.compatible;

        std::printf("%-16s %9.3fx %9.3fx %9.3fx %14s\n", name.c_str(),
                    a, d, sheriff.compatible ? s : 0.0,
                    outcomeStr(sheriff));
        csv.row("%s,%.4f,%.4f,%.4f,%s", name.c_str(), a, d,
                sheriff.compatible ? s : 0.0, outcomeStr(sheriff));
    }

    std::printf("\ngeomean: tmi-alloc %.3fx; tmi-detect %.3fx over "
                "the FS-free workloads (paper: ~1.02x)\n",
                geomean(alloc_over), geomean(detect_over_clean));
    std::printf("tmi-detect over all 35 including the FS set: %.3fx "
                "(sync redirection already fixes\nspinlockpool, "
                "pulling the mean below 1)\n",
                geomean(detect_over));
    std::printf("sheriff-detect compatible with %u of %zu workloads "
                "(paper: 11 of 35)\n",
                sheriff_ok, overheadSet().size());
    return 0;
}
