/**
 * @file
 * Extension study: HITM-based detection across coherence protocols.
 *
 * Tmi's detector relies on Intel's HITM event, which fires when a
 * request hits a remote *Modified* line. Under an AMD-style MOESI
 * protocol, some dirty hits are served from the Owned state instead
 * and never raise that event. The study measures how much of the
 * detection signal survives: false sharing keeps re-creating
 * Modified lines through its invalidation/write cycle, so enough
 * HITM events remain for detection under both protocols -- MOESI's
 * real effect is replacing writebacks and some dirty hits with
 * quiet Owned forwards. (This grounds the paper's portability remark
 * in section 2.1: AMD exposes IBS, a different event family, but a
 * MOESI machine would not starve HITM-style detection of false
 * sharing either.)
 */

#include "bench_util.hh"
#include "runtime/tmi_runtime.hh"

using namespace tmi;
using namespace tmi::bench;

namespace
{

struct Outcome
{
    Cycles cycles = 0;
    std::uint64_t hitm = 0;
    std::uint64_t ownedForwards = 0;
    std::uint64_t writebacks = 0;
    double fsEstimated = 0;
    bool repaired = false;
};

/**
 * @param read_heavy false: every thread read-modify-writes its own
 *        packed slot (write-write FS). true: one writer updates its
 *        slot while the others continuously scan the line
 *        (read-mostly FS).
 */
Outcome
run(Protocol protocol, bool read_heavy, std::uint64_t iters)
{
    MachineConfig mc;
    mc.cache.protocol = protocol;
    mc.shmBackedHeap = true;
    mc.tmiModifiedAllocator = true;
    Machine machine(mc);
    Addr pc_st =
        machine.instructions().define("w.store", MemKind::Store, 8);
    Addr pc_ld =
        machine.instructions().define("w.load", MemKind::Load, 8);

    TmiConfig tc;
    tc.analysisInterval = 500'000;
    TmiRuntime tmi(machine, tc);
    tmi.attach();

    machine.spawnThread("main", [&](ThreadApi &api) {
        Addr slots = api.malloc(4 * 8); // packed: one line
        api.fill(slots, 0, 4 * 8);
        std::vector<ThreadId> ws;
        for (int t = 0; t < 4; ++t) {
            ws.push_back(api.spawn("w", [&, t, iters](ThreadApi &w) {
                Addr mine = slots + t * 8;
                for (std::uint64_t i = 0; i < iters; ++i) {
                    if (!read_heavy || t == 0) {
                        std::uint64_t v = w.load(pc_ld, mine);
                        w.store(pc_st, mine, v + 1);
                    } else {
                        // Readers poll their own slots: disjoint
                        // bytes, so this is false sharing against
                        // the writer, carried entirely by loads.
                        w.load(pc_ld, mine);
                        w.load(pc_ld, mine);
                        w.load(pc_ld, mine);
                    }
                }
            }));
        }
        for (ThreadId t : ws)
            api.join(t);
    });
    machine.sched().run(60'000'000'000ULL);

    Outcome out;
    out.cycles = machine.elapsed();
    out.hitm = machine.cache().hitmEvents();
    out.ownedForwards = machine.cache().ownedForwards();
    out.writebacks = machine.cache().writebacks();
    out.fsEstimated = tmi.detector().fsEventsEstimated();
    out.repaired = tmi.repairActive();
    return out;
}

void
report(const char *pattern, bool read_heavy, std::uint64_t iters)
{
    for (Protocol p : {Protocol::Mesi, Protocol::Moesi}) {
        Outcome o = run(p, read_heavy, iters);
        std::printf("%-22s %-7s %10llu %10llu %10llu %10.0f %9s\n",
                    pattern, p == Protocol::Mesi ? "MESI" : "MOESI",
                    static_cast<unsigned long long>(o.hitm),
                    static_cast<unsigned long long>(o.ownedForwards),
                    static_cast<unsigned long long>(o.writebacks),
                    o.fsEstimated, o.repaired ? "yes" : "NO");
    }
}

} // namespace

int
main()
{
    std::uint64_t iters = 15000 * benchScale(4);
    header("Extension: HITM visibility across coherence protocols");
    std::printf("%-22s %-7s %10s %10s %10s %10s %9s\n", "pattern",
                "proto", "HITM", "O-fwd", "wrbacks", "FS est",
                "repaired");

    report("write-write FS", false, iters);
    report("read-mostly FS", true, iters);

    std::printf("\nfalse sharing keeps re-creating Modified lines, so "
                "HITM-based detection triggers\nunder both protocols; "
                "MOESI's Owned state replaces writebacks and part of "
                "the\ndirty-hit traffic with quiet forwards without "
                "hiding the bug from the detector.\n");
    return 0;
}
