/**
 * @file
 * Extension study: detector accuracy against ground truth, as a
 * function of the PEBS sampling period.
 *
 * The layout fuzzer builds lines whose sharing behaviour is known
 * (false-shared / true-shared / private / read-only), runs them under
 * detection, and scores the detector's per-line verdicts. This
 * quantifies the accuracy end of Figure 4's accuracy/overhead
 * trade-off, which the paper describes qualitatively.
 */

#include <map>

#include "bench_util.hh"
#include "runtime/tmi_runtime.hh"
#include "workloads/fuzz_layout.hh"

using namespace tmi;
using namespace tmi::bench;

namespace
{

struct Score
{
    unsigned truePos = 0;  //!< FS lines flagged FS
    unsigned falsePos = 0; //!< non-FS lines flagged FS
    unsigned falseNeg = 0; //!< FS lines missed
};

Score
runOnce(std::uint64_t period, std::uint64_t seed,
        std::uint64_t scale)
{
    MachineConfig mc;
    mc.cores = 4;
    mc.shmBackedHeap = true;
    mc.tmiModifiedAllocator = true;
    mc.perf.period = period;
    mc.seed = seed;
    Machine machine(mc);

    WorkloadParams params;
    params.threads = 4;
    params.scale = scale;
    params.seed = seed;
    FuzzLayoutWorkload::Mix mix;
    FuzzLayoutWorkload workload(params, mix);
    workload.init(machine);

    TmiConfig tc;
    tc.mode = TmiMode::DetectOnly;
    tc.analysisInterval = 500'000;
    TmiRuntime tmi(machine, tc);
    tmi.attach();

    machine.spawnThread("fuzz-main", [&workload](ThreadApi &api) {
        workload.main(api);
    });
    machine.sched().run(60'000'000'000ULL);

    // Score the detector's lifetime per-line verdicts against the
    // generator's ground truth: a line "flagged FS" if its estimated
    // FS events dominate its TS events.
    std::map<Addr, std::pair<double, double>> verdicts;
    for (const auto &rep :
         tmi.detector().topContendedLines(10000)) {
        verdicts[rep.lineAddr] = {rep.fsEvents, rep.tsEvents};
    }

    Score score;
    const auto &truth = workload.groundTruth();
    for (std::size_t i = 0; i < truth.size(); ++i) {
        auto it = verdicts.find(workload.lineAddr(i));
        bool flagged = it != verdicts.end() &&
                       it->second.first > it->second.second &&
                       it->second.first > 0;
        bool is_fs = truth[i] == LineBehaviour::FalseShared;
        if (is_fs && flagged)
            ++score.truePos;
        else if (!is_fs && flagged)
            ++score.falsePos;
        else if (is_fs && !flagged)
            ++score.falseNeg;
    }
    return score;
}

} // namespace

int
main()
{
    std::uint64_t scale = benchScale(3);
    header("Extension: detector accuracy vs sampling period "
           "(layout fuzzer, ground truth known)");
    std::printf("%-8s %10s %10s %10s %12s %10s\n", "period", "TP",
                "FP", "FN", "precision", "recall");

    for (std::uint64_t period : {1, 10, 100, 1000, 10000}) {
        Score total;
        for (std::uint64_t seed : {3u, 17u, 99u}) {
            Score s = runOnce(period, seed, scale);
            total.truePos += s.truePos;
            total.falsePos += s.falsePos;
            total.falseNeg += s.falseNeg;
        }
        double precision =
            total.truePos + total.falsePos
                ? static_cast<double>(total.truePos) /
                      (total.truePos + total.falsePos)
                : 1.0;
        double recall =
            total.truePos + total.falseNeg
                ? static_cast<double>(total.truePos) /
                      (total.truePos + total.falseNeg)
                : 1.0;
        std::printf("%-8llu %10u %10u %10u %11.0f%% %9.0f%%\n",
                    static_cast<unsigned long long>(period),
                    total.truePos, total.falsePos, total.falseNeg,
                    100 * precision, 100 * recall);
    }
    std::printf("\nthe accuracy half of Figure 4's trade-off: very "
                "fine periods lose records to\nring-buffer overflow "
                "and amplify address noise (precision and recall "
                "both\nsuffer); very coarse periods simply miss lines "
                "(recall collapses, precision\nholds). The paper's "
                "period of 100 sits at the sweet spot.\n");
    return 0;
}
