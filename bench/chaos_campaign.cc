/**
 * @file
 * The acceptance chaos campaign: generated fault schedules per cell,
 * judged by the differential end-state oracle, over two families:
 *
 *  - batch: the false-sharing workload set (histogramfs, lreg,
 *    stringmatch, lu-ncb) under the three repairing treatments
 *    (tmi-protect, sheriff-protect, laser), 64 schedules per cell;
 *  - server: the long-running stateful feed handlers (feed-spsc,
 *    feed-spmc) with typed workload params under tmi-protect and
 *    laser (sheriff-protect cannot validate the ring atomics),
 *    16 schedules per cell.
 *
 * The claims under test:
 *
 *  - every surviving run converges to the fault-free end state
 *    (digest match), whatever rung the ladder landed on;
 *  - the campaign is deterministic: the CSV from this binary is
 *    byte-identical for any TMI_BENCH_WORKERS value (re-run with 1
 *    and 4 workers and `cmp` the files);
 *  - failures, if any ever appear, come out as minimized replayable
 *    reproducer specs instead of a seed number and a shrug.
 *
 * Env knobs: TMI_BENCH_SCALE (default 2), TMI_BENCH_WORKERS,
 * TMI_CHAOS_SCHEDULES (default 64), TMI_CHAOS_SERVER_SCHEDULES
 * (default 16), TMI_CHAOS_SEED (default 1), TMI_CHAOS_SHARDS
 * (worker processes; only with --journal-dir).
 * Usage: chaos_campaign [--csv out.csv] [--repro-dir DIR]
 *                       [--journal-dir DIR] [--resume]
 *
 * The server campaign writes its CSV next to the batch one as
 * "<out.csv>.server" (or to stdout after the batch CSV when no
 * --csv was given); with --journal-dir its journals live in
 * "<DIR>-server" so the two manifests never collide.
 *
 * --journal-dir runs the campaigns on the crash-safe shard
 * supervisor: results are journaled as they land, a killed run
 * continues with --resume, and the CSV is byte-identical to the
 * in-process campaign's.
 */

#include <fstream>
#include <iostream>

#include "bench_util.hh"
#include "chaos/campaign.hh"

using namespace tmi;
using namespace tmi::bench;

namespace
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    if (const char *env = std::getenv(name))
        return std::strtoull(env, nullptr, 10);
    return fallback;
}

struct CampaignIo
{
    std::string csvPath;
    std::string reproDir;
    std::string journalDir;
    bool resume = false;
};

/** Run one campaign (in-process or sharded per io.journalDir) and
 *  report its reproducers; returns false on an unclean outcome. */
bool
runOne(const char *label, const chaos::CampaignSpec &spec,
       const CampaignIo &io)
{
    std::ofstream csv_file;
    if (!io.csvPath.empty()) {
        csv_file.open(io.csvPath);
        if (!csv_file) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         io.csvPath.c_str());
            return false;
        }
    }
    std::ostream &os = io.csvPath.empty()
                           ? static_cast<std::ostream &>(std::cout)
                           : csv_file;

    driver::RunnerOptions opts;
    opts.workers = benchWorkers();

    chaos::CampaignOutcome outcome;
    if (!io.journalDir.empty()) {
        chaos::ShardedCampaignOptions sharded;
        sharded.shard.journalDir = io.journalDir;
        sharded.shard.resume = io.resume;
        sharded.shard.shards = static_cast<unsigned>(
            envU64("TMI_CHAOS_SHARDS", 2));
        sharded.shard.runner = opts;
        driver::ShardRunStats stats;
        try {
            outcome =
                chaos::runCampaignSharded(spec, sharded, &os, &stats);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "chaos_campaign: %s: %s\n", label,
                         e.what());
            return false;
        }
        std::fprintf(
            stderr,
            "[chaos:%s] %llu shard(s), %llu crash(es), %llu resumed\n",
            label, static_cast<unsigned long long>(stats.shards),
            static_cast<unsigned long long>(stats.crashes),
            static_cast<unsigned long long>(stats.resumedJobs));
    } else {
        driver::Runner runner(opts);
        outcome = chaos::runCampaign(spec, runner, &os);
    }

    for (const auto &repro : outcome.reproducers) {
        std::fprintf(stderr, "[chaos:%s] minimized reproducer:\n%s",
                     label,
                     chaos::writeScheduleSpec(repro.minimized)
                         .c_str());
        if (io.reproDir.empty())
            continue;
        std::string name = io.reproDir + "/repro_" +
                           repro.minimized.workload + "_" +
                           std::to_string(repro.minimized.index) +
                           ".spec";
        std::ofstream rf(name);
        if (rf)
            rf << chaos::writeScheduleSpec(repro.minimized);
    }

    std::fprintf(stderr,
                 "[chaos:%s] %llu judged, %llu passed, %llu failed, "
                 "%llu skipped (seed %llu)\n",
                 label,
                 static_cast<unsigned long long>(outcome.judged),
                 static_cast<unsigned long long>(outcome.passed),
                 static_cast<unsigned long long>(outcome.failed),
                 static_cast<unsigned long long>(outcome.skipped),
                 static_cast<unsigned long long>(spec.campaignSeed));
    return outcome.clean();
}

} // namespace

int
main(int argc, char **argv)
{
    CampaignIo io;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--csv" && i + 1 < argc) {
            io.csvPath = argv[++i];
        } else if (arg == "--repro-dir" && i + 1 < argc) {
            io.reproDir = argv[++i];
        } else if (arg == "--journal-dir" && i + 1 < argc) {
            io.journalDir = argv[++i];
        } else if (arg == "--resume") {
            io.resume = true;
        } else {
            std::fprintf(stderr,
                         "usage: chaos_campaign [--csv out.csv] "
                         "[--repro-dir DIR] [--journal-dir DIR] "
                         "[--resume]\n");
            return 2;
        }
    }
    setLogLevel(LogLevel::Quiet);

    chaos::CampaignSpec batch;
    batch.base.run = benchConfig("histogramfs", Treatment::TmiProtect,
                                 benchScale(2));
    // The FS set minus the atomics-reliant cells Sheriff/LASER
    // cannot validate anyway is still >= 4 workloads; use the
    // digest-bearing Phoenix/Splash subset for apples-to-apples
    // judging across all three treatments.
    batch.workloads = {"histogramfs", "lreg", "stringmatch",
                       "lu-ncb"};
    batch.treatments = {Treatment::TmiProtect,
                        Treatment::SheriffProtect, Treatment::Laser};
    batch.schedules = envU64("TMI_CHAOS_SCHEDULES", 64);
    batch.campaignSeed = envU64("TMI_CHAOS_SEED", 1);

    // The server family keeps per-request state alive across the
    // whole run, so fault recovery is judged against a stateful
    // end-state digest, not a one-shot reduction. Sheriff-protect is
    // out: it cannot validate the SPSC/MPMC ring atomics.
    chaos::CampaignSpec server;
    server.base.run = benchConfig("feed-spsc", Treatment::TmiProtect,
                                  benchScale(2));
    server.base.run.params = {{"requests", "256"},
                              {"stat_rounds", "4"},
                              {"burst", "4"}};
    server.workloads = {"feed-spsc", "feed-spmc"};
    server.treatments = {Treatment::TmiProtect, Treatment::Laser};
    server.schedules = envU64("TMI_CHAOS_SERVER_SCHEDULES", 16);
    server.campaignSeed = envU64("TMI_CHAOS_SEED", 1);

    CampaignIo server_io = io;
    if (!io.csvPath.empty())
        server_io.csvPath = io.csvPath + ".server";
    if (!io.journalDir.empty())
        server_io.journalDir = io.journalDir + "-server";

    bool ok = runOne("batch", batch, io);
    ok = runOne("server", server, server_io) && ok;
    return ok ? 0 : 1;
}
