/**
 * @file
 * The acceptance chaos campaign: 64 generated fault schedules per
 * cell over the false-sharing workload set under the three repairing
 * treatments (tmi-protect, sheriff-protect, laser), judged by the
 * differential end-state oracle.
 *
 * The claims under test:
 *
 *  - every surviving run converges to the fault-free end state
 *    (digest match), whatever rung the ladder landed on;
 *  - the campaign is deterministic: the CSV from this binary is
 *    byte-identical for any TMI_BENCH_WORKERS value (re-run with 1
 *    and 4 workers and `cmp` the files);
 *  - failures, if any ever appear, come out as minimized replayable
 *    reproducer specs instead of a seed number and a shrug.
 *
 * Env knobs: TMI_BENCH_SCALE (default 2), TMI_BENCH_WORKERS,
 * TMI_CHAOS_SCHEDULES (default 64), TMI_CHAOS_SEED (default 1),
 * TMI_CHAOS_SHARDS (worker processes; only with --journal-dir).
 * Usage: chaos_campaign [--csv out.csv] [--repro-dir DIR]
 *                       [--journal-dir DIR] [--resume]
 *
 * --journal-dir runs the campaign on the crash-safe shard
 * supervisor: results are journaled as they land, a killed run
 * continues with --resume, and the CSV is byte-identical to the
 * in-process campaign's.
 */

#include <fstream>
#include <iostream>

#include "bench_util.hh"
#include "chaos/campaign.hh"

using namespace tmi;
using namespace tmi::bench;

namespace
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    if (const char *env = std::getenv(name))
        return std::strtoull(env, nullptr, 10);
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string csv_path;
    std::string repro_dir;
    std::string journal_dir;
    bool resume = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--csv" && i + 1 < argc) {
            csv_path = argv[++i];
        } else if (arg == "--repro-dir" && i + 1 < argc) {
            repro_dir = argv[++i];
        } else if (arg == "--journal-dir" && i + 1 < argc) {
            journal_dir = argv[++i];
        } else if (arg == "--resume") {
            resume = true;
        } else {
            std::fprintf(stderr,
                         "usage: chaos_campaign [--csv out.csv] "
                         "[--repro-dir DIR] [--journal-dir DIR] "
                         "[--resume]\n");
            return 2;
        }
    }
    setLogLevel(LogLevel::Quiet);

    chaos::CampaignSpec spec;
    spec.base.run = benchConfig("histogramfs", Treatment::TmiProtect,
                                benchScale(2));
    // The FS set minus the atomics-reliant cells Sheriff/LASER
    // cannot validate anyway is still >= 4 workloads; use the
    // digest-bearing Phoenix/Splash subset for apples-to-apples
    // judging across all three treatments.
    spec.workloads = {"histogramfs", "lreg", "stringmatch", "lu-ncb"};
    spec.treatments = {Treatment::TmiProtect,
                       Treatment::SheriffProtect, Treatment::Laser};
    spec.schedules = envU64("TMI_CHAOS_SCHEDULES", 64);
    spec.campaignSeed = envU64("TMI_CHAOS_SEED", 1);

    driver::RunnerOptions opts;
    opts.workers = benchWorkers();

    std::ofstream csv_file;
    if (!csv_path.empty()) {
        csv_file.open(csv_path);
        if (!csv_file) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         csv_path.c_str());
            return 2;
        }
    }
    std::ostream &os = csv_path.empty()
                           ? static_cast<std::ostream &>(std::cout)
                           : csv_file;

    chaos::CampaignOutcome outcome;
    if (!journal_dir.empty()) {
        chaos::ShardedCampaignOptions sharded;
        sharded.shard.journalDir = journal_dir;
        sharded.shard.resume = resume;
        sharded.shard.shards = static_cast<unsigned>(
            envU64("TMI_CHAOS_SHARDS", 2));
        sharded.shard.runner = opts;
        driver::ShardRunStats stats;
        try {
            outcome =
                chaos::runCampaignSharded(spec, sharded, &os, &stats);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "chaos_campaign: %s\n", e.what());
            return 2;
        }
        std::fprintf(
            stderr,
            "[chaos] %llu shard(s), %llu crash(es), %llu resumed\n",
            static_cast<unsigned long long>(stats.shards),
            static_cast<unsigned long long>(stats.crashes),
            static_cast<unsigned long long>(stats.resumedJobs));
    } else {
        driver::Runner runner(opts);
        outcome = chaos::runCampaign(spec, runner, &os);
    }

    for (const auto &repro : outcome.reproducers) {
        std::fprintf(stderr, "[chaos] minimized reproducer:\n%s",
                     chaos::writeScheduleSpec(repro.minimized)
                         .c_str());
        if (repro_dir.empty())
            continue;
        std::string name = repro_dir + "/repro_" +
                           repro.minimized.workload + "_" +
                           std::to_string(repro.minimized.index) +
                           ".spec";
        std::ofstream rf(name);
        if (rf)
            rf << chaos::writeScheduleSpec(repro.minimized);
    }

    std::fprintf(stderr,
                 "[chaos] %llu judged, %llu passed, %llu failed, "
                 "%llu skipped (seed %llu)\n",
                 static_cast<unsigned long long>(outcome.judged),
                 static_cast<unsigned long long>(outcome.passed),
                 static_cast<unsigned long long>(outcome.failed),
                 static_cast<unsigned long long>(outcome.skipped),
                 static_cast<unsigned long long>(spec.campaignSeed));
    return outcome.clean() ? 0 : 1;
}
