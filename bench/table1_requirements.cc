/**
 * @file
 * Table 1: the four requirements for effective false sharing repair,
 * measured for Sheriff, LASER, and Tmi (Plastic requires a custom
 * OS/hypervisor and has no public artifact; its row is quoted from
 * the paper).
 *
 *  - compatible: fraction of the suite that runs correctly;
 *  - memory consistency: do the Figure 11/12 case studies survive;
 *  - overhead without contention (geomean over non-FS workloads);
 *  - % of manual speedup captured on the FS workloads.
 */

#include <algorithm>

#include "bench_util.hh"

using namespace tmi;
using namespace tmi::bench;

namespace
{

struct SystemRow
{
    const char *name;
    Treatment detect;
    Treatment repair;
};

} // namespace

int
main()
{
    std::uint64_t scale = benchScale(2);
    // A subset of the suite keeps this table's runtime reasonable;
    // fig7/fig9 sweep everything.
    std::vector<std::string> clean = {"blackscholes", "streamcluster",
                                      "swaptions", "canneal",
                                      "dedup", "fft"};
    std::vector<std::string> fs = {"histogramfs", "lreg",
                                   "stringmatch", "leveldb",
                                   "shptr-relaxed"};

    SystemRow systems[] = {
        {"sheriff", Treatment::SheriffDetect,
         Treatment::SheriffProtect},
        {"laser", Treatment::Laser, Treatment::Laser},
        {"tmi", Treatment::TmiDetect, Treatment::TmiProtect},
    };

    header("Table 1: requirements for effective FS repair");
    std::printf("%-10s %12s %12s %14s %16s\n", "system", "compatible",
                "consistency", "overhead", "%-of-manual");

    for (const auto &sys : systems) {
        unsigned ok = 0, total = 0;
        std::vector<double> overheads;
        for (const auto &name : clean) {
            ExperimentConfig cfg =
                benchConfig(name, Treatment::Pthreads, scale);
            RunResult base = runExperiment(cfg);
            cfg.treatment = sys.detect;
            cfg.budget = base.cycles * 25;
            RunResult detect = runExperiment(cfg);
            ++total;
            if (detect.compatible) {
                ++ok;
                overheads.push_back(
                    static_cast<double>(detect.cycles) / base.cycles);
            }
        }

        // Consistency: the canneal and cholesky case studies under
        // the system's *repair* mechanism, forced onto their pages.
        ExperimentConfig ccfg =
            benchConfig("canneal", sys.repair, 2);
        ccfg.repairThreshold = 1.0;
        ccfg.budget = 1'500'000'000ULL;
        bool canneal_ok = runExperiment(ccfg).compatible;
        ccfg.workload = "cholesky";
        bool cholesky_ok =
            runExperiment(ccfg).outcome != RunOutcome::Timeout;
        bool consistent = canneal_ok && cholesky_ok;

        std::vector<double> captures;
        for (const auto &name : fs) {
            ExperimentConfig cfg =
                benchConfig(name, Treatment::Pthreads, scale * 2);
            RunResult base = runExperiment(cfg);
            cfg.treatment = Treatment::Manual;
            RunResult manual = runExperiment(cfg);
            cfg.treatment = sys.repair;
            cfg.budget = base.cycles * 25;
            RunResult rep = runExperiment(cfg);
            double m = speedup(base, manual);
            double r = rep.compatible ? speedup(base, rep) : 1.0;
            if (m > 1.0)
                captures.push_back(
                    std::max(0.0, (r - 1.0) / (m - 1.0)));
        }
        double capture = 0;
        for (double c : captures)
            capture += c;
        capture /= captures.empty() ? 1 : captures.size();

        std::printf("%-10s %9u/%-2u %12s %13.1f%% %15.0f%%\n",
                    sys.name, ok, total,
                    consistent ? "yes" : "NO",
                    overheads.empty()
                        ? 0.0
                        : 100.0 * (geomean(overheads) - 1.0),
                    100.0 * capture);
    }
    std::printf("%-10s %12s %12s %14s %16s   (from the paper; no "
                "public artifact)\n",
                "plastic", "NO", "yes", "6%", "~30%");
    std::printf("\npaper row for comparison: sheriff 27%% / 92%%, "
                "laser 2%% / 24%%, tmi 2%% / 88%%\n");
    return 0;
}
