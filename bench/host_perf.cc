/**
 * @file
 * Host-performance harness: how many host nanoseconds one simulated
 * memory operation costs, per workload x treatment.
 *
 * This is the simulator's own perf trajectory (the simulated-cycle
 * outputs are pinned by the cycle-identity golden; this file tracks
 * the *host* cost of producing them). Emits BENCH_hostperf.json:
 * each cell carries the current measurement plus the pre-refactor
 * baseline compiled in from hostperf_baseline.inc, so the speedup is
 * recorded in the same file.
 *
 * Usage:
 *   host_perf [--out FILE] [--record]
 *
 * --record prints hostperf_baseline.inc rows for the current build
 * (run it before a hot-path change to re-baseline). Scale comes from
 * TMI_BENCH_SCALE (default 4); reps from TMI_HOSTPERF_REPS (default
 * 3, best-of). Baselines only apply when the scale matches the one
 * they were recorded at.
 */

#include <chrono>
#include <cstring>
#include <string>

#include "bench_util.hh"

namespace
{

using namespace tmi;
using namespace tmi::bench;

struct BaselineRow
{
    const char *workload;
    const char *treatment;
    double nsPerMemOp;
};

/** Recorded with --record at the commit immediately before the
 *  AccessPipeline refactor (scale 4, threads 4, best of 3). */
constexpr BaselineRow baselineRows[] = {
#include "hostperf_baseline.inc"
};

/** Scale the baseline table was recorded at. */
constexpr std::uint64_t baselineScale = 4;

struct Cell
{
    const char *workload;
    const char *treatment;
};

/** Access-heavy workloads x the treatments whose hot paths differ:
 *  no hooks (pthreads), full Tmi (COW + CCC), LASER (interception). */
constexpr Cell cells[] = {
    {"histogramfs", "pthreads"},
    {"histogramfs", "tmi-protect"},
    {"histogramfs", "laser"},
    {"lreg", "pthreads"},
    {"lreg", "tmi-protect"},
    {"lreg", "laser"},
    {"streamcluster", "pthreads"},
    {"streamcluster", "tmi-protect"},
    {"streamcluster", "laser"},
    {"lu-ncb", "pthreads"},
    {"spinlockpool", "pthreads"},
};

double
baselineFor(const Cell &cell, std::uint64_t scale)
{
    if (scale != baselineScale)
        return 0.0;
    for (const BaselineRow &row : baselineRows) {
        if (std::strcmp(row.workload, cell.workload) == 0 &&
            std::strcmp(row.treatment, cell.treatment) == 0) {
            return row.nsPerMemOp;
        }
    }
    return 0.0;
}

unsigned
reps()
{
    if (const char *env = std::getenv("TMI_HOSTPERF_REPS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    return 3;
}

struct Measurement
{
    std::uint64_t memOps = 0;
    std::uint64_t hostNs = 0; //!< best (minimum) across reps
};

Measurement
measure(const Cell &cell, std::uint64_t scale, unsigned n)
{
    const Treatment *t = tryParseTreatment(cell.treatment);
    if (!t)
        fatal("host_perf: unknown treatment %s", cell.treatment);
    ExperimentConfig cfg = benchConfig(cell.workload, *t, scale);

    Measurement m;
    for (unsigned rep = 0; rep < n; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        RunResult res = runExperiment(cfg);
        auto t1 = std::chrono::steady_clock::now();
        if (!res.compatible) {
            fatal("host_perf: %s x %s did not complete correctly",
                  cell.workload, cell.treatment);
        }
        auto ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                t1 - t0)
                .count());
        if (rep == 0 || ns < m.hostNs)
            m.hostNs = ns;
        m.memOps = res.memOps;
    }
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = "BENCH_hostperf.json";
    bool record = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--record") == 0) {
            record = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--out FILE] [--record]\n",
                         argv[0]);
            return 2;
        }
    }

    std::uint64_t scale = benchScale(4);
    unsigned n = reps();

    header("host-ns per simulated mem-op");
    std::printf("%-14s %-14s %12s %10s %10s %8s\n", "workload",
                "treatment", "mem-ops", "ns/op", "Mop/s", "speedup");

    std::FILE *out = std::fopen(out_path, "w");
    if (!out)
        fatal("host_perf: cannot open %s", out_path);
    std::fprintf(out,
                 "{\n  \"schema\": \"tmi-hostperf-v1\",\n"
                 "  \"scale\": %llu,\n  \"threads\": 4,\n"
                 "  \"reps\": %u,\n  \"baseline_scale\": %llu,\n"
                 "  \"cells\": [\n",
                 static_cast<unsigned long long>(scale), n,
                 static_cast<unsigned long long>(baselineScale));

    bool first = true;
    for (const Cell &cell : cells) {
        Measurement m = measure(cell, scale, n);
        double ns_per_op =
            static_cast<double>(m.hostNs) /
            static_cast<double>(m.memOps ? m.memOps : 1);
        double mops_per_sec =
            static_cast<double>(m.memOps) * 1e9 /
            static_cast<double>(m.hostNs ? m.hostNs : 1);
        double base = baselineFor(cell, scale);
        double speedup = base > 0.0 ? base / ns_per_op : 0.0;

        char speedup_str[16] = "-";
        if (speedup > 0.0)
            std::snprintf(speedup_str, sizeof(speedup_str), "%.2fx",
                          speedup);
        std::printf("%-14s %-14s %12llu %10.2f %10.2f %8s\n",
                    cell.workload, cell.treatment,
                    static_cast<unsigned long long>(m.memOps),
                    ns_per_op, mops_per_sec / 1e6, speedup_str);
        if (record) {
            std::printf("{\"%s\", \"%s\", %.4f},\n", cell.workload,
                        cell.treatment, ns_per_op);
        }

        std::fprintf(out,
                     "%s    {\"workload\": \"%s\", "
                     "\"treatment\": \"%s\", \"mem_ops\": %llu, "
                     "\"host_ns\": %llu, \"ns_per_memop\": %.4f, "
                     "\"memops_per_sec\": %.1f, "
                     "\"baseline_ns_per_memop\": %.4f, "
                     "\"speedup_vs_baseline\": %.4f}",
                     first ? "" : ",\n", cell.workload,
                     cell.treatment,
                     static_cast<unsigned long long>(m.memOps),
                     static_cast<unsigned long long>(m.hostNs),
                     ns_per_op, mops_per_sec, base, speedup);
        first = false;
    }
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote %s\n", out_path);
    return 0;
}
