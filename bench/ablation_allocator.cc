/**
 * @file
 * Section 4.1 ablation: the Lockless allocator versus a glibc-like
 * allocator as the pthreads baseline.
 *
 * Paper: the Lockless allocator outperformed glibc by 16% on average
 * (which is why it is the baseline everywhere), and allocator layout
 * alone determines lu-ncb's false sharing.
 */

#include "bench_util.hh"

using namespace tmi;
using namespace tmi::bench;

int
main()
{
    std::uint64_t scale = benchScale(3);
    header("Ablation: Lockless vs glibc-like allocator (pthreads)");
    std::printf("%-16s %12s %12s %12s\n", "workload", "lockless(ms)",
                "glibc(ms)", "lockless-gain");

    std::vector<double> gains;
    const char *names[] = {"histogram", "wordcount", "reverse",
                           "ferret", "dedup", "leveldb",
                           "streamcluster", "barnes"};
    for (const char *name : names) {
        ExperimentConfig cfg =
            benchConfig(name, Treatment::Pthreads, scale);
        cfg.allocator = AllocatorKind::Lockless;
        RunResult lockless = runExperiment(cfg);
        cfg.allocator = AllocatorKind::GlibcLike;
        RunResult glibc = runExperiment(cfg);

        double gain =
            static_cast<double>(glibc.cycles) / lockless.cycles;
        gains.push_back(gain);
        std::printf("%-16s %12.3f %12.3f %11.2fx\n", name,
                    lockless.seconds * 1e3, glibc.seconds * 1e3,
                    gain);
    }
    std::printf("\ngeomean lockless advantage %.2fx (paper: 1.16x). "
                "Allocation-churn-heavy programs\n(wordcount, dedup) "
                "pay glibc's arena-lock transfers; lu-ncb (not shown) "
                "adds\nthe false sharing glibc's packed small-object "
                "layout induces.\n",
                geomean(gains));
    return 0;
}
