/**
 * @file
 * Figure 4: performance and precision of HITM events reported by
 * perf at various sampling periods, on leveldb.
 *
 * The paper's shape: small periods slow the application (each PEBS
 * record costs a microcode assist) while large periods under-count
 * events; "Total" is the true event count the period-n runs are
 * estimating.
 */

#include "bench_util.hh"

using namespace tmi;
using namespace tmi::bench;

int
main()
{
    std::uint64_t scale = benchScale(4);
    header("Figure 4: perf event period sweep (leveldb)");
    std::printf("%-8s %12s %14s %16s\n", "period", "runtime(ms)",
                "PEBS records", "estimated events");

    std::uint64_t total_events = 0;
    for (std::uint64_t period : {1, 5, 10, 50, 100, 1000}) {
        RunResult res =
            benchBuilder("leveldb", Treatment::TmiDetect, scale)
                .perfPeriod(period)
                .run();
        std::printf("%-8llu %12.3f %14llu %16.0f\n",
                    static_cast<unsigned long long>(period),
                    res.seconds * 1e3,
                    static_cast<unsigned long long>(res.pebsRecords),
                    res.fsEventsEstimated + res.tsEventsEstimated);
        total_events = res.hitmEvents;
    }
    std::printf("%-8s %12s %14s %16llu\n", "total", "-", "-",
                static_cast<unsigned long long>(total_events));
    std::printf("\npaper shape: runtime drops sharply from period 1 "
                "to 10 and flattens;\nrecorded events fall roughly "
                "linearly with the period.\n");
    return 0;
}
