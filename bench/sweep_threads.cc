/**
 * @file
 * Extension study (not a paper figure): how Tmi's repair scales with
 * core count. The paper evaluates at 4 (repair) and 8 (detection)
 * cores; this sweep shows the false sharing penalty -- and thus the
 * repair win -- growing with the number of contending cores, while
 * the repaired runtime stays flat.
 */

#include "bench_util.hh"

using namespace tmi;
using namespace tmi::bench;

int
main()
{
    std::uint64_t scale = benchScale(6);
    header("Extension: repair speedup vs core count");
    std::printf("%-16s %8s %12s %12s %10s\n", "workload", "threads",
                "pthreads(ms)", "tmi(ms)", "speedup");

    for (const char *name : {"histogramfs", "lreg", "shptr-relaxed"}) {
        for (unsigned threads : {2u, 4u, 8u}) {
            ExperimentConfig cfg =
                benchConfig(name, Treatment::Pthreads, scale);
            cfg.threads = threads;
            RunResult base = runExperiment(cfg);
            cfg.treatment = Treatment::TmiProtect;
            RunResult tmi = runExperiment(cfg);
            std::printf("%-16s %8u %12.3f %12.3f %9.2fx%s\n", name,
                        threads, base.seconds * 1e3,
                        tmi.seconds * 1e3, speedup(base, tmi),
                        tmi.compatible ? "" : "  INVALID");
        }
    }
    std::printf("\nmore contending cores -> more invalidation traffic "
                "per line -> larger repair win.\n");
    return 0;
}
