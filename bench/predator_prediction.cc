/**
 * @file
 * Extension study: predictive detection at larger cache line sizes
 * (the Predator capability the paper's related work cites), and what
 * it costs relative to Tmi's HITM sampling.
 *
 * The workload gives each thread a 64-byte-aligned slot: perfectly
 * clean on this machine, false shared on any machine with 128-byte
 * lines. HITM sampling is cheap but structurally blind to it;
 * instrumentation sampling pays a Predator-sized tax and predicts it.
 */

#include "bench_util.hh"
#include "detect/detector.hh"
#include "runtime/tmi_runtime.hh"

using namespace tmi;
using namespace tmi::bench;

namespace
{

struct Outcome
{
    Cycles cycles = 0;
    std::uint64_t hitm = 0;
    std::size_t predicted128 = 0;
    double fsEstimated = 0;
};

Outcome
run(bool instrumented, std::uint64_t iters)
{
    MachineConfig mc;
    mc.instrumentationSampling = instrumented ? 7 : 0;
    Machine machine(mc);
    Addr pc_st =
        machine.instructions().define("w.store", MemKind::Store, 8);
    Addr pc_ld =
        machine.instructions().define("w.load", MemKind::Load, 8);

    Detector det(machine.instructions(), machine.addressMap(),
                 DetectorConfig{});
    if (instrumented) {
        machine.setAccessSampler([&det](const AccessContext &ctx) {
            det.consumeAccess(ctx.tid, ctx.vaddr, ctx.pc);
        });
    } else {
        // HITM path: drain perf records directly (detect-only).
        machine.perf().setPeriod(100);
    }

    machine.spawnThread("main", [&](ThreadApi &api) {
        Addr slots = api.memalign(lineBytes, 4 * lineBytes);
        api.fill(slots, 0, 4 * lineBytes);
        std::vector<ThreadId> ws;
        for (int t = 0; t < 4; ++t) {
            Addr slot = slots + t * lineBytes;
            ws.push_back(api.spawn("w", [&, slot, iters](ThreadApi &w) {
                for (std::uint64_t i = 0; i < iters; ++i) {
                    std::uint64_t v = w.load(pc_ld, slot);
                    w.store(pc_st, slot, v + 1);
                }
            }));
        }
        for (ThreadId t : ws)
            api.join(t);
    });
    machine.sched().run(60'000'000'000ULL);

    if (!instrumented) {
        std::vector<PebsRecord> records;
        machine.perf().drainAll(records);
        for (const auto &rec : records)
            det.consume(rec);
    }

    Outcome out;
    out.cycles = machine.elapsed();
    out.hitm = machine.cache().hitmEvents();
    out.predicted128 = det.predictFalseSharing(7).size();
    out.fsEstimated = det.fsEventsEstimated();
    return out;
}

} // namespace

int
main()
{
    std::uint64_t iters = 20000 * benchScale(4);
    header("Extension: predicting false sharing at 128-byte lines");
    std::printf("%-24s %12s %10s %14s %12s\n", "detection",
                "runtime(ms)", "HITM", "FS@64 found", "FS@128 pred");

    Outcome hitm = run(false, iters);
    Outcome instr = run(true, iters);

    std::printf("%-24s %12.3f %10llu %14.0f %12zu\n",
                "HITM sampling (Tmi)", hitm.cycles / 3.4e6,
                static_cast<unsigned long long>(hitm.hitm),
                hitm.fsEstimated, hitm.predicted128);
    std::printf("%-24s %12.3f %10llu %14s %12zu\n",
                "instrumentation", instr.cycles / 3.4e6,
                static_cast<unsigned long long>(instr.hitm), "n/a",
                instr.predicted128);

    std::printf("\nthe workload is clean at 64 B (zero HITM), so "
                "HITM-based detection cannot see\nwhat a 128-B-line "
                "machine would suffer; instrumentation predicts both "
                "blocks at a\n%.2fx runtime cost -- the "
                "accuracy/overhead divide between Tmi and Predator.\n",
                static_cast<double>(instr.cycles) / hitm.cycles);
    return 0;
}
