/**
 * @file
 * Figure 10: overhead of 4 KB standard pages versus 2 MB huge pages
 * for Tmi's process-shared, file-backed memory allocation.
 *
 * Paper shape: the large-footprint programs (canneal, reverse, fft,
 * fmm, ocean-ncp, radix) fault heavily with 4 KB pages and gain the
 * most; huge pages average a 6% speedup overall.
 */

#include "bench_util.hh"

using namespace tmi;
using namespace tmi::bench;

int
main()
{
    std::uint64_t scale = benchScale(3);
    header("Figure 10: 4 KB vs 2 MB pages for Tmi's shm heap");
    std::printf("%-16s %12s %12s %12s %12s\n", "workload",
                "4k(ms)", "2m(ms)", "overhead%", "4k-faults");

    std::vector<double> ratios;
    for (const auto &name : overheadSet()) {
        ExperimentConfig cfg =
            benchConfig(name, Treatment::TmiAlloc, scale);
        cfg.pageShift = smallPageShift;
        RunResult small = runExperiment(cfg);
        cfg.pageShift = hugePageShift;
        RunResult huge = runExperiment(cfg);

        double overhead = 100.0 * (static_cast<double>(small.cycles) /
                                       huge.cycles -
                                   1.0);
        ratios.push_back(static_cast<double>(small.cycles) /
                         huge.cycles);
        std::printf("%-16s %12.3f %12.3f %11.1f%% %12llu\n",
                    name.c_str(), small.seconds * 1e3,
                    huge.seconds * 1e3, overhead,
                    static_cast<unsigned long long>(small.softFaults));
    }
    std::printf("\nmean 4k-over-2m ratio %.3fx (paper: huge pages "
                "give a 6%% average speedup)\n",
                geomean(ratios));
    return 0;
}
