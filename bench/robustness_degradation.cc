/**
 * @file
 * Robustness sweep: every false-sharing workload is run under
 * tmi-protect with one fault point forced at a time, then with a
 * rate sweep on the two highest-leverage points. The claim under
 * test is the degradation ladder's contract: no injected fault may
 * cost correctness or forward progress -- the run lands on some
 * ladder rung (detect-and-repair, detect-only, alloc-only) with the
 * right checksum, and only speed is sacrificed.
 *
 * Columns: outcome ("ok" = completed + validated), the final ladder
 * rung, slowdown vs the same treatment with no faults, injected
 * fires, and which self-healing mechanisms engaged (T2P aborts,
 * un-repairs, watchdog flushes, COW fallbacks).
 *
 * The closing campaign is the ROADMAP fault-rate sweep: every FS
 * workload x the two highest-leverage fault points x a rate ladder,
 * at scale 8, expressed as a driver::SweepSpec and executed on the
 * sweep runner (TMI_BENCH_WORKERS host threads; output order is
 * fixed by job id regardless).
 */

#include "bench_util.hh"

using namespace tmi;
using namespace tmi::bench;

namespace
{

struct Scenario
{
    const char *label;
    const char *point;
    FaultSpec spec;
};

std::vector<Scenario>
scenarios()
{
    return {
        {"perf-overflow", faultpoint::perfRingOverflow,
         FaultSpec::always()},
        {"perf-drop", faultpoint::perfDropRecord,
         FaultSpec::withProbability(0.5)},
        {"perf-wild-pc", faultpoint::perfWildPc,
         FaultSpec::withProbability(0.5)},
        {"perf-bad-addr", faultpoint::perfCorruptAddr,
         FaultSpec::withProbability(0.5)},
        {"clone-fail", faultpoint::memCloneFail,
         FaultSpec::always()},
        {"clone-fail-1x", faultpoint::memCloneFail,
         FaultSpec::once()},
        {"frame-exhaust", faultpoint::memFrameExhausted,
         FaultSpec::always()},
        {"twin-fail", faultpoint::ptsbTwinAllocFail,
         FaultSpec::always()},
        {"oversize-commit", faultpoint::ptsbOversizeCommit,
         FaultSpec::always()},
        {"stop-timeout-1x", faultpoint::schedStopTimeout,
         FaultSpec::once()},
    };
}

RunResult
runWithFault(const std::string &workload, std::uint64_t scale,
             const char *point, const FaultSpec &spec)
{
    ExperimentBuilder b =
        benchBuilder(workload, Treatment::TmiProtect, scale);
    if (point)
        b.fault(point, spec);
    return b.run();
}

} // namespace

int
main()
{
    std::uint64_t scale = benchScale(3);
    CsvSink csv(robustnessCsvHeader());

    header("Degradation ladder: forced faults, one point at a time");
    std::printf("%-14s %-16s %6s %-18s %9s %7s %11s\n", "workload",
                "scenario", "state", "rung", "slowdown", "fires",
                "healing");

    unsigned bad = 0;
    for (const auto &name : falseSharingSet()) {
        RunResult clean = runWithFault(name, scale, nullptr, {});
        std::printf("%-14s %-16s %6s %-18s %9s %7s %11s\n",
                    name.c_str(), "none", outcomeStr(clean),
                    clean.ladderRung.c_str(), "1.000x", "0", "-");
        csv.row("%s", robustnessCsvRow(clean, "none", 1.0).c_str());
        for (const Scenario &sc : scenarios()) {
            RunResult res =
                runWithFault(name, scale, sc.point, sc.spec);
            double slow =
                clean.cycles
                    ? static_cast<double>(res.cycles) / clean.cycles
                    : 0.0;
            char healing[64];
            std::snprintf(healing, sizeof(healing),
                          "a%lu u%lu w%lu c%lu",
                          static_cast<unsigned long>(res.t2pAborts),
                          static_cast<unsigned long>(res.unrepairs),
                          static_cast<unsigned long>(
                              res.watchdogFlushes),
                          static_cast<unsigned long>(
                              res.cowFallbacks));
            std::printf("%-14s %-16s %6s %-18s %8.3fx %7lu %11s\n",
                        name.c_str(), sc.label, outcomeStr(res),
                        res.ladderRung.c_str(), slow,
                        static_cast<unsigned long>(res.faultFires),
                        healing);
            csv.row("%s",
                    robustnessCsvRow(res, sc.label, slow).c_str());
            bad += !res.compatible;
        }
    }

    header("Fault-rate sweep (histogramfs): overhead vs rate");
    std::printf("%-18s %8s %6s %-18s %9s\n", "point", "rate", "state",
                "rung", "slowdown");
    RunResult clean = runWithFault("histogramfs", scale, nullptr, {});
    for (const char *point : {faultpoint::memFrameExhausted,
                              faultpoint::perfDropRecord}) {
        for (double rate : {0.01, 0.1, 0.5, 1.0}) {
            RunResult res = runWithFault(
                "histogramfs", scale, point,
                FaultSpec::withProbability(rate));
            double slow =
                clean.cycles
                    ? static_cast<double>(res.cycles) / clean.cycles
                    : 0.0;
            std::printf("%-18s %8.2f %6s %-18s %8.3fx\n", point,
                        rate, outcomeStr(res),
                        res.ladderRung.c_str(), slow);
            char scenario[48];
            std::snprintf(scenario, sizeof(scenario), "%s@%.2f",
                          point, rate);
            csv.row("%s",
                    robustnessCsvRow(res, scenario, slow).c_str());
            bad += !res.compatible;
        }
    }

    header("Campaign: fault-rate x FS-workload sweep (sweep driver)");
    std::printf("%-14s %-24s %6s %-18s %9s\n", "workload", "scenario",
                "state", "rung", "slowdown");

    driver::SweepSpec spec;
    spec.base = benchBuilder("histogramfs", Treatment::TmiProtect,
                             benchScale(8))
                    .peek();
    spec.workloads = falseSharingSet();
    spec.faultPoints = {faultpoint::memFrameExhausted,
                        faultpoint::perfDropRecord};
    // Rate 0 cells are the clean controls the slowdown column is
    // computed against (expansion order keeps them first per point).
    spec.faultRates = {0.0, 0.01, 0.1, 0.5, 1.0};

    driver::RunnerOptions opts;
    opts.workers = benchWorkers();
    driver::Runner runner(opts);

    std::uint64_t clean_cycles = 0;
    driver::FunctionSink sink([&](const driver::JobResult &r) {
        std::string scenario = r.job.scenario();
        if (r.status != driver::JobStatus::Ok) {
            std::printf("%-14s %-24s %6s %-18s %9s\n",
                        r.job.config.run.workload.c_str(),
                        scenario.c_str(),
                        driver::jobStatusName(r.status), "-", "-");
            ++bad;
            return;
        }
        if (r.job.faultRate == 0.0)
            clean_cycles = r.run.cycles;
        double slow = clean_cycles
                          ? static_cast<double>(r.run.cycles) /
                                static_cast<double>(clean_cycles)
                          : 0.0;
        std::printf("%-14s %-24s %6s %-18s %8.3fx\n",
                    r.job.config.run.workload.c_str(),
                    scenario.c_str(), outcomeStr(r.run),
                    r.run.ladderRung.c_str(), slow);
        csv.row("%s",
                robustnessCsvRow(r.run, scenario, slow).c_str());
        bad += !r.run.compatible;
    });
    runner.run(spec, &sink);

    std::printf("\n%u faulted run(s) lost correctness or hung "
                "(contract: 0)\n",
                bad);
    return bad != 0;
}
